#include "core/mudbscan.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/mudbscan_engine.hpp"
#include "obs/trace.hpp"

namespace udb {

namespace {

// Atomic view of a byte flag shared between threads in the parallel phases.
inline std::atomic_ref<std::uint8_t> flag(std::vector<std::uint8_t>& v,
                                          PointId i) {
  return std::atomic_ref<std::uint8_t>(v[i]);
}

// Sequential-loop checkpoint stride (Algorithms 4/6/7/8). The parallel paths
// checkpoint per chunk via parallel_for_chunked instead.
constexpr std::size_t kSeqCheckStride = 1024;

// wndq_ byte values double as query-avoidance reason codes: any nonzero
// value means "tagged, skip the query" (all existing truthiness checks keep
// working), and the value records WHY for the Algorithm 6 skip-site ledger.
// A tag is claimed exactly once (plain first-write in the thread-exclusive
// Algorithm 4 paths, compare-exchange from 0 in the concurrent promotion
// path), so a DMC/CMC tag is never overwritten by a later promotion and the
// dmc/cmc avoidance counts are deterministic at every thread count.
enum WndqReason : std::uint8_t {
  kWndqNone = 0,
  kWndqDmc = 1,        // inner-circle member of a dense MC (Lemma 1)
  kWndqCmc = 2,        // centre of a core MC (Lemma 2)
  kWndqPromotion = 3,  // dynamically promoted (Algorithm 6 lines 18-21)
};

// Per-reason skip totals accumulated at the Algorithm 6 skip site. Each
// point is tested exactly once, so performed + avoided[*] == n.
struct AvoidedLedger {
  std::uint64_t by_reason[4] = {};
  void count(std::uint8_t reason) { ++by_reason[reason & 3]; }
  [[nodiscard]] std::uint64_t dmc() const { return by_reason[kWndqDmc]; }
  [[nodiscard]] std::uint64_t cmc() const { return by_reason[kWndqCmc]; }
  [[nodiscard]] std::uint64_t promotion() const {
    return by_reason[kWndqPromotion];
  }
  void merge(const AvoidedLedger& o) {
    for (int r = 0; r < 4; ++r) by_reason[r] += o.by_reason[r];
  }
};

}  // namespace

MuDbscanEngine::MuDbscanEngine(const Dataset& ds, const DbscanParams& params,
                               MuDbscanConfig cfg)
    : ds_(&ds), params_(params), cfg_(cfg), uf_(ds.size()) {
  if (params_.min_pts == 0)
    throw std::invalid_argument("MuDbscan: MinPts must be >= 1");
  const std::size_t n = ds.size();

  // Run-guard setup: an external guard is shared (distributed ranks all point
  // at the run's guard); limits without a guard get an engine-owned one.
  guard_ = cfg_.guard;
  if (guard_ == nullptr &&
      (cfg_.deadline_seconds > 0.0 || cfg_.mem_budget_bytes > 0)) {
    owned_guard_ = std::make_unique<RunGuard>(
        RunLimits{cfg_.deadline_seconds, cfg_.mem_budget_bytes});
    guard_ = owned_guard_.get();
  }
  // Per-point flag vectors (4 bytes) + the union-find parent array.
  if (guard_)
    flags_charge_.acquire_throw(guard_, n * (4 + sizeof(PointId)),
                                "engine flags + union-find");

  is_core_.assign(n, 0);
  wndq_.assign(n, 0);
  assigned_.assign(n, 0);
  // CSR invariant: noise_off_.size() == noise_pts_.size() + 1 from the start,
  // so the Algorithm 8 scan and per-thread merging need no lazy init.
  noise_off_.assign(1, 0);
  if (cfg_.num_threads > 1)
    pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
}

MuDbscanEngine::~MuDbscanEngine() {
  if (cfg_.metrics != nullptr) cfg_.metrics->merge_from(metrics_.snapshot());
}

void MuDbscanEngine::build_tree() {
  obs::Span span(cfg_.tracer, "phase.build_tree");
  WallTimer timer;
  MuRTree::Config tcfg;
  tcfg.two_eps_rule = cfg_.two_eps_rule;
  tcfg.bulk_aux = cfg_.bulk_aux;
  tcfg.guard = guard_;
  tcfg.tracer = cfg_.tracer;
  tree_ = std::make_unique<MuRTree>(*ds_, params_.eps, tcfg, pool_.get());
  tree_->compute_inner_circles(pool_.get());
  stats.num_mcs = tree_->num_mcs();
  stats.t_tree = timer.seconds();
}

void MuDbscanEngine::find_reachable() {
  obs::Span span(cfg_.tracer, "phase.find_reachable");
  WallTimer timer;
  tree_->compute_reachable(pool_.get());
  stats.t_reach = timer.seconds();
}

void MuDbscanEngine::cluster() {
  if (pool_) {
    cluster_parallel();
    return;
  }
  obs::Span phase_span(cfg_.tracer, "phase.cluster");
  WallTimer timer;
  const std::size_t n = ds_->size();
  const double eps = params_.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const std::uint32_t min_pts = params_.min_pts;
  // Hot-loop counters accumulate in locals and publish to the registry once
  // per phase; only the per-query histogram observation hits the registry
  // inside the loop (a TLS lookup + a few relaxed stores, dwarfed by the
  // tree descent it accounts for).
  std::uint64_t unions = 0;
  std::uint64_t noise_provisional = 0;
  AvoidedLedger avoided;

  // --- Algorithm 4: PROCESS-MICRO-CLUSTERS ------------------------------
  // DMC: every inner-circle point is core (Lemma 1) and so is the centre
  // (its eps-ball contains IC plus itself); CMC: the centre is core
  // (Lemma 2). Either way all members are united with the centre — they are
  // directly density-reachable from it.
  obs::Span alg4_span(cfg_.tracer, "alg4.process_mcs");
  for (McId z = 0; z < tree_->num_mcs(); ++z) {
    if (guard_ && z % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 4");
    const MicroCluster& mc = tree_->mc(z);
    const McKind kind = mc.classify(min_pts);
    if (kind == McKind::Sparse) {
      ++stats.smc;
      continue;
    }
    if (kind == McKind::Dense) {
      ++stats.dmc;
      const double* c = ds_->ptr(mc.center);
      for (PointId q : mc.members) {
        if (q != mc.center &&
            sq_dist(c, ds_->ptr(q), ds_->dim()) >= half2)
          continue;  // outside the inner circle: border for the time being
        if (!wndq_[q]) {
          wndq_[q] = kWndqDmc;
          is_core_[q] = 1;
          wndq_list_.push_back(q);
        }
      }
    } else {  // Core MC
      ++stats.cmc;
      if (!wndq_[mc.center]) {
        wndq_[mc.center] = kWndqCmc;
        is_core_[mc.center] = 1;
        wndq_list_.push_back(mc.center);
      }
    }
    for (PointId q : mc.members) {
      uf_.union_sets(mc.center, q);
      assigned_[q] = 1;
    }
    unions += mc.members.size();
  }
  alg4_span.end();

  // --- Algorithm 6: PROCESS-REM-POINTS ----------------------------------
  obs::Span alg6_span(cfg_.tracer, "alg6.process_rem_points");
  std::vector<std::pair<PointId, double>> nbhd;
  for (std::size_t i = 0; i < n; ++i) {
    if (guard_ && i % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 6");
    const PointId p = static_cast<PointId>(i);
    if (wndq_[p]) {  // query saved; ledger by reason code
      avoided.count(wndq_[p]);
      continue;
    }
    ++stats.queries_performed;

    nbhd.clear();
    if (cfg_.mbr_filtration) {
      tree_->query_neighborhood(p, eps, nbhd);
    } else {
      // Ablation: search every reachable MC's aux tree without the MBR
      // filter.
      const McId z = tree_->mc_of_point(p);
      const auto pt = ds_->point(p);
      for (McId r : tree_->mc(z).reach) {
        tree_->aux_tree(r).visit_ball(pt, eps, [&nbhd](PointId id, double d2) {
          nbhd.emplace_back(id, d2);
          return true;
        });
      }
    }
    metrics_.observe(obs::Hist::kNeighborCount, nbhd.size());

    if (nbhd.size() < min_pts) {
      // Non-core: border if some already-known core is in range, otherwise
      // provisional noise with the neighborhood remembered for Algorithm 8.
      bool attached = assigned_[p] != 0;
      if (!attached) {
        for (const auto& [q, d2] : nbhd) {
          if (is_core_[q]) {
            uf_.union_sets(q, p);
            ++unions;
            assigned_[p] = 1;
            attached = true;
            break;
          }
        }
      }
      if (!attached) {
        ++noise_provisional;
        noise_pts_.push_back(p);
        for (const auto& [q, d2] : nbhd)
          if (q != p) noise_nbrs_.push_back(q);
        noise_off_.push_back(static_cast<std::uint32_t>(noise_nbrs_.size()));
      }
      continue;
    }

    // Core point.
    is_core_[p] = 1;
    assigned_[p] = 1;

    // Dynamic wndq promotion (Algorithm 6 lines 18-21): if >= MinPts of the
    // neighbors sit strictly within eps/2 of p, they are pairwise strictly
    // within eps of each other, so each of them is core — no query needed.
    if (cfg_.dynamic_promotion) {
      std::size_t inner = 0;
      for (const auto& [q, d2] : nbhd)
        if (d2 < half2) ++inner;
      if (inner >= min_pts) {
        for (const auto& [q, d2] : nbhd) {
          if (d2 < half2 && !is_core_[q]) {
            is_core_[q] = 1;
            if (!wndq_[q]) {
              wndq_[q] = kWndqPromotion;
              wndq_list_.push_back(q);
            }
          }
        }
      }
    }

    for (const auto& [q, d2] : nbhd) {
      if (is_core_[q]) {
        uf_.union_sets(p, q);
        ++unions;
        assigned_[q] = 1;
      } else if (!assigned_[q]) {
        uf_.union_sets(p, q);
        ++unions;
        assigned_[q] = 1;
      }
    }
  }
  stats.wndq_core_points = wndq_list_.size();
  stats.avoided_dmc = avoided.dmc();
  stats.avoided_cmc = avoided.cmc();
  stats.avoided_promotion = avoided.promotion();
  metrics_.add(obs::Counter::kQueriesPerformed, stats.queries_performed);
  metrics_.add(obs::Counter::kQueriesAvoidedDmc, avoided.dmc());
  metrics_.add(obs::Counter::kQueriesAvoidedCmc, avoided.cmc());
  metrics_.add(obs::Counter::kQueriesAvoidedPromotion, avoided.promotion());
  metrics_.add(obs::Counter::kMcDense, stats.dmc);
  metrics_.add(obs::Counter::kMcCore, stats.cmc);
  metrics_.add(obs::Counter::kMcSparse, stats.smc);
  metrics_.add(obs::Counter::kUnionCalls, unions);
  metrics_.add(obs::Counter::kNoiseProvisional, noise_provisional);
  charge_scratch();
  stats.t_cluster = timer.seconds();
}

// Thread-parallel Algorithms 4 + 6, exact-equivalent to the sequential path
// above (full argument in docs/PARALLEL.md). Sketch:
//   * Algorithm 4 parallelizes over MCs: every point belongs to exactly one
//     MC, so member flag writes are exclusive to the owning thread; only the
//     lock-free union-find is shared.
//   * Algorithm 6 parallelizes over points. Core points publish is_core_
//     with seq_cst BEFORE scanning their neighborhood; for any two
//     concurrently-queried core neighbors the store/load pattern is Dekker's,
//     so at least one side observes the other and performs the union. Border
//     points are claimed with an atomic exchange on assigned_ (exactly one
//     core adopts an unassigned non-core neighbor — the classic parallel
//     DBSCAN border race). Missed late-promoted cores are repaired by
//     Algorithms 7/8 exactly as in the sequential engine.
//   * wndq additions and the provisional-noise CSR go to per-thread buffers
//     merged after the join, so the Algorithm 7/8 inputs keep their layout.
void MuDbscanEngine::cluster_parallel() {
  obs::Span phase_span(cfg_.tracer, "phase.cluster");
  WallTimer timer;
  const std::size_t n = ds_->size();
  const double eps = params_.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const std::uint32_t min_pts = params_.min_pts;
  ThreadPool* pool = pool_.get();
  const unsigned nt = pool->num_threads();

  // --- Algorithm 4 (parallel over MCs) ----------------------------------
  obs::Span alg4_span(cfg_.tracer, "alg4.process_mcs");
  struct alignas(64) McAccum {
    std::uint64_t dmc = 0, cmc = 0, smc = 0;
    std::uint64_t unions = 0;
    std::vector<PointId> wndq;
  };
  std::vector<McAccum> mc_acc(nt);
  parallel_for_chunked(
      pool, tree_->num_mcs(), 16,
      [&](std::size_t begin, std::size_t end, unsigned tid) {
        McAccum& acc = mc_acc[tid];
        for (std::size_t zi = begin; zi < end; ++zi) {
          const MicroCluster& mc = tree_->mc(static_cast<McId>(zi));
          const McKind kind = mc.classify(min_pts);
          if (kind == McKind::Sparse) {
            ++acc.smc;
            continue;
          }
          if (kind == McKind::Dense) {
            ++acc.dmc;
            const double* c = ds_->ptr(mc.center);
            for (PointId q : mc.members) {
              if (q != mc.center &&
                  sq_dist(c, ds_->ptr(q), ds_->dim()) >= half2)
                continue;
              // q is exclusive to this MC (hence this thread): plain writes.
              if (!wndq_[q]) {
                wndq_[q] = kWndqDmc;
                is_core_[q] = 1;
                acc.wndq.push_back(q);
              }
            }
          } else {  // Core MC
            ++acc.cmc;
            if (!wndq_[mc.center]) {
              wndq_[mc.center] = kWndqCmc;
              is_core_[mc.center] = 1;
              acc.wndq.push_back(mc.center);
            }
          }
          for (PointId q : mc.members) {
            uf_.union_sets(mc.center, q);
            assigned_[q] = 1;
          }
          acc.unions += mc.members.size();
        }
      },
      guard_);
  std::uint64_t unions = 0;
  for (const McAccum& acc : mc_acc) {
    stats.dmc += acc.dmc;
    stats.cmc += acc.cmc;
    stats.smc += acc.smc;
    unions += acc.unions;
    wndq_list_.insert(wndq_list_.end(), acc.wndq.begin(), acc.wndq.end());
  }
  alg4_span.end();

  // --- Algorithm 6 (parallel over points) -------------------------------
  obs::Span alg6_span(cfg_.tracer, "alg6.process_rem_points");
  struct alignas(64) PtAccum {
    std::uint64_t queries = 0;
    std::uint64_t unions = 0;
    AvoidedLedger avoided;
    std::vector<PointId> wndq;
    std::vector<PointId> noise_pts;
    std::vector<std::uint32_t> noise_len;  // neighbors stored per noise point
    std::vector<PointId> noise_nbrs;
    std::vector<std::pair<PointId, double>> nbhd;  // query scratch
  };
  std::vector<PtAccum> pt_acc(nt);

  parallel_for_chunked(
      pool, n, 64, [&](std::size_t begin, std::size_t end, unsigned tid) {
        PtAccum& acc = pt_acc[tid];
        auto& nbhd = acc.nbhd;
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = static_cast<PointId>(i);
          // A concurrent promotion may land after this check — p then runs a
          // redundant (but harmless) query, exactly like a sequential run
          // that promoted p after its turn. The skip site runs exactly once
          // per point, so the per-reason ledger sums with `queries` to n.
          const std::uint8_t reason =
              flag(wndq_, p).load(std::memory_order_relaxed);
          if (reason) {
            acc.avoided.count(reason);
            continue;
          }
          ++acc.queries;

          nbhd.clear();
          if (cfg_.mbr_filtration) {
            tree_->query_neighborhood(p, eps, nbhd);
          } else {
            const McId z = tree_->mc_of_point(p);
            const auto pt = ds_->point(p);
            for (McId r : tree_->mc(z).reach) {
              tree_->aux_tree(r).visit_ball(
                  pt, eps, [&nbhd](PointId id, double d2) {
                    nbhd.emplace_back(id, d2);
                    return true;
                  });
            }
          }
          metrics_.observe(obs::Hist::kNeighborCount, nbhd.size());

          if (nbhd.size() < min_pts) {
            bool attached =
                flag(assigned_, p).load(std::memory_order_acquire) != 0;
            if (!attached) {
              for (const auto& [q, d2] : nbhd) {
                if (flag(is_core_, q).load(std::memory_order_seq_cst)) {
                  // Claim before union: a concurrent core may adopt p via the
                  // same exchange, and only the exchange winner unions — a
                  // load/union/store here would let both unions run and
                  // bridge two clusters through non-core p.
                  if (!flag(assigned_, p)
                           .exchange(1, std::memory_order_acq_rel)) {
                    uf_.union_sets(q, p);
                    ++acc.unions;
                  }
                  attached = true;
                  break;
                }
              }
            }
            if (!attached) {
              // Conservative: a neighbor may become core after this scan;
              // Algorithm 8 re-checks the stored neighborhood against the
              // final core flags and repairs the label.
              acc.noise_pts.push_back(p);
              std::uint32_t len = 0;
              for (const auto& [q, d2] : nbhd)
                if (q != p) {
                  acc.noise_nbrs.push_back(q);
                  ++len;
                }
              acc.noise_len.push_back(len);
            }
            continue;
          }

          // Core point: publish the flag BEFORE scanning neighbors (seq_cst;
          // Dekker pairing with other queried cores — see docs/PARALLEL.md).
          flag(is_core_, p).store(1, std::memory_order_seq_cst);
          flag(assigned_, p).store(1, std::memory_order_release);

          if (cfg_.dynamic_promotion) {
            std::size_t inner = 0;
            for (const auto& [q, d2] : nbhd)
              if (d2 < half2) ++inner;
            if (inner >= min_pts) {
              for (const auto& [q, d2] : nbhd) {
                if (d2 >= half2) continue;
                const bool was_core =
                    flag(is_core_, q).exchange(1, std::memory_order_seq_cst);
                if (!was_core) {
                  // Claim the tag only if untagged (compare-exchange from 0,
                  // not a blind exchange): an Algorithm 4 DMC/CMC reason is
                  // never overwritten, keeping the dmc/cmc ledger counts
                  // deterministic at every thread count.
                  std::uint8_t expected = kWndqNone;
                  if (flag(wndq_, q).compare_exchange_strong(
                          expected, kWndqPromotion,
                          std::memory_order_relaxed))
                    acc.wndq.push_back(q);
                }
              }
            }
          }

          for (const auto& [q, d2] : nbhd) {
            if (flag(is_core_, q).load(std::memory_order_seq_cst)) {
              uf_.union_sets(p, q);
              ++acc.unions;
              flag(assigned_, q).store(1, std::memory_order_release);
            } else if (!flag(assigned_, q)
                            .exchange(1, std::memory_order_acq_rel)) {
              // Atomically adopted q as this cluster's border point; exactly
              // one core wins this exchange (the parallel-DBSCAN border
              // race), mirroring the sequential first-claimer rule.
              uf_.union_sets(p, q);
              ++acc.unions;
            }
          }
        }
      },
      guard_);
  alg6_span.end();

  // Per-thread scratch is the phase's hidden allocation: charge its actual
  // footprint while it coexists with the merged engine buffers, then let it
  // go out of scope (the ScopedCharge releases with it).
  ScopedCharge thread_scratch;
  if (guard_) {
    std::size_t scratch_bytes = 0;
    for (const PtAccum& acc : pt_acc)
      scratch_bytes += vector_bytes(acc.wndq) + vector_bytes(acc.noise_pts) +
                       vector_bytes(acc.noise_len) +
                       vector_bytes(acc.noise_nbrs) + vector_bytes(acc.nbhd);
    thread_scratch.acquire_throw(guard_, scratch_bytes,
                                 "per-thread scratch buffers");
  }

  AvoidedLedger avoided;
  std::uint64_t noise_provisional = 0;
  for (PtAccum& acc : pt_acc) {
    stats.queries_performed += acc.queries;
    avoided.merge(acc.avoided);
    unions += acc.unions;
    noise_provisional += acc.noise_pts.size();
    wndq_list_.insert(wndq_list_.end(), acc.wndq.begin(), acc.wndq.end());
    noise_pts_.insert(noise_pts_.end(), acc.noise_pts.begin(),
                      acc.noise_pts.end());
    noise_nbrs_.insert(noise_nbrs_.end(), acc.noise_nbrs.begin(),
                       acc.noise_nbrs.end());
    for (std::uint32_t len : acc.noise_len)
      noise_off_.push_back(noise_off_.back() + len);
  }
  stats.wndq_core_points = wndq_list_.size();
  stats.avoided_dmc = avoided.dmc();
  stats.avoided_cmc = avoided.cmc();
  stats.avoided_promotion = avoided.promotion();
  // Single post-join publish: the registry merge order is the deterministic
  // accumulator order above, not worker scheduling.
  metrics_.add(obs::Counter::kQueriesPerformed, stats.queries_performed);
  metrics_.add(obs::Counter::kQueriesAvoidedDmc, avoided.dmc());
  metrics_.add(obs::Counter::kQueriesAvoidedCmc, avoided.cmc());
  metrics_.add(obs::Counter::kQueriesAvoidedPromotion, avoided.promotion());
  metrics_.add(obs::Counter::kMcDense, stats.dmc);
  metrics_.add(obs::Counter::kMcCore, stats.cmc);
  metrics_.add(obs::Counter::kMcSparse, stats.smc);
  metrics_.add(obs::Counter::kUnionCalls, unions);
  metrics_.add(obs::Counter::kNoiseProvisional, noise_provisional);
  charge_scratch();
  stats.t_cluster = timer.seconds();
}

void MuDbscanEngine::charge_scratch() {
  if (!guard_) return;
  scratch_charge_.acquire_throw(
      guard_,
      vector_bytes(wndq_list_) + vector_bytes(noise_pts_) +
          vector_bytes(noise_off_) + vector_bytes(noise_nbrs_),
      "engine worklists + noise CSR");
}

void MuDbscanEngine::finalize_metrics() {
  metrics_.add(obs::Counter::kWndqCorePoints, wndq_list_.size());
  metrics_.add(obs::Counter::kMcDeferredPoints, tree_->deferred_points());
  metrics_.add(obs::Counter::kAuxTreesSearched, tree_->aux_trees_searched());
  const MuRTree::IndexCounters ic = tree_->index_counters();
  metrics_.add(obs::Counter::kRtreeNodeVisits, ic.node_visits);
  metrics_.add(obs::Counter::kRtreeDistanceEvals, ic.distance_evals);
  metrics_.add(obs::Counter::kKernelBlocks, ic.kernel_blocks);
  metrics_.add(obs::Counter::kKernelTailPoints, ic.kernel_tail_points);
  for (McId z = 0; z < tree_->num_mcs(); ++z) {
    const MicroCluster& mc = tree_->mc(z);
    metrics_.observe(obs::Hist::kMcSize, mc.members.size());
    metrics_.observe(obs::Hist::kReachableLen, mc.reach.size());
  }
}

void MuDbscanEngine::post_process() {
  if (pool_) {
    post_process_parallel();
    return;
  }
  obs::Span phase_span(cfg_.tracer, "phase.post_process");
  WallTimer timer;
  const double eps2 = params_.eps * params_.eps;
  std::uint64_t unions = 0;
  std::uint64_t repaired = 0;

  // --- Algorithm 7: POST-PROCESSING-CORE --------------------------------
  // wndq-core points never ran a query, so their unions with core points of
  // *other* clusters may be missing. For each, scan the filtered reachable
  // MCs and unite with any core point strictly within eps that is not yet in
  // the same set. (Distance is only computed for cores in a different set —
  // far cheaper than a neighborhood query.)
  obs::Span alg7_span(cfg_.tracer, "alg7.post_core");
  for (std::size_t wi = 0; wi < wndq_list_.size(); ++wi) {
    if (guard_ && wi % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 7");
    const PointId p = wndq_list_[wi];
    const McId z = tree_->mc_of_point(p);
    const auto pt = ds_->point(p);
    for (McId r : tree_->mc(z).reach) {
      if (cfg_.mbr_filtration &&
          !tree_->aux_tree(r).root_mbr().overlaps_ball(pt, params_.eps))
        continue;
      for (PointId q : tree_->mc(r).members) {
        if (!is_core_[q]) continue;
        if (uf_.find(q) == uf_.find(p)) continue;
        ++stats.post_core_distance_evals;
        if (sq_dist(pt.data(), ds_->ptr(q), ds_->dim()) < eps2) {
          uf_.union_sets(p, q);
          ++unions;
        }
      }
    }
  }
  alg7_span.end();

  // --- Algorithm 8: POST-PROCESSING-NOISE -------------------------------
  // A provisional noise point whose stored neighborhood now contains a core
  // point (one promoted to wndq-core after the noise point was processed)
  // is in fact a border point.
  obs::Span alg8_span(cfg_.tracer, "alg8.post_noise");
  for (std::size_t i = 0; i < noise_pts_.size(); ++i) {
    if (guard_ && i % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 8");
    const PointId p = noise_pts_[i];
    if (assigned_[p]) continue;
    for (std::uint32_t j = noise_off_[i]; j < noise_off_[i + 1]; ++j) {
      const PointId q = noise_nbrs_[j];
      if (is_core_[q]) {
        uf_.union_sets(q, p);
        ++unions;
        ++repaired;
        assigned_[p] = 1;
        break;
      }
    }
  }
  alg8_span.end();
  metrics_.add(obs::Counter::kPostCoreDistanceEvals,
               stats.post_core_distance_evals);
  metrics_.add(obs::Counter::kUnionCalls, unions);
  metrics_.add(obs::Counter::kBorderRepaired, repaired);
  finalize_metrics();
  stats.t_post = timer.seconds();
}

// Thread-parallel Algorithms 7 + 8. After cluster() joins, is_core_ is final
// and read-only; Algorithm 7 writes nothing but the lock-free union-find, and
// Algorithm 8 touches assigned_[p] only for its own (unique) noise point, so
// both loops are data-parallel as-is.
void MuDbscanEngine::post_process_parallel() {
  obs::Span phase_span(cfg_.tracer, "phase.post_process");
  WallTimer timer;
  const double eps2 = params_.eps * params_.eps;
  ThreadPool* pool = pool_.get();
  const unsigned nt = pool->num_threads();

  obs::Span alg7_span(cfg_.tracer, "alg7.post_core");
  struct alignas(64) EvalAccum {
    std::uint64_t v = 0;
    std::uint64_t unions = 0;
    std::uint64_t repaired = 0;
  };
  std::vector<EvalAccum> evals(nt);
  parallel_for_chunked(
      pool, wndq_list_.size(), 16,
      [&](std::size_t begin, std::size_t end, unsigned tid) {
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = wndq_list_[i];
          const McId z = tree_->mc_of_point(p);
          const auto pt = ds_->point(p);
          for (McId r : tree_->mc(z).reach) {
            if (cfg_.mbr_filtration &&
                !tree_->aux_tree(r).root_mbr().overlaps_ball(pt, params_.eps))
              continue;
            for (PointId q : tree_->mc(r).members) {
              if (!is_core_[q]) continue;
              // Concurrent unions may make this a stale negative — the
              // worst case is a redundant distance eval + no-op union.
              if (uf_.find(q) == uf_.find(p)) continue;
              ++evals[tid].v;
              if (sq_dist(pt.data(), ds_->ptr(q), ds_->dim()) < eps2) {
                uf_.union_sets(p, q);
                ++evals[tid].unions;
              }
            }
          }
        }
      },
      guard_);
  alg7_span.end();

  obs::Span alg8_span(cfg_.tracer, "alg8.post_noise");
  parallel_for_chunked(
      pool, noise_pts_.size(), 64,
      [&](std::size_t begin, std::size_t end, unsigned tid) {
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = noise_pts_[i];
          if (assigned_[p]) continue;
          for (std::uint32_t j = noise_off_[i]; j < noise_off_[i + 1]; ++j) {
            const PointId q = noise_nbrs_[j];
            if (is_core_[q]) {
              uf_.union_sets(q, p);
              ++evals[tid].unions;
              ++evals[tid].repaired;
              assigned_[p] = 1;
              break;
            }
          }
        }
      },
      guard_);
  alg8_span.end();

  std::uint64_t unions = 0, repaired = 0;
  for (const EvalAccum& e : evals) {
    stats.post_core_distance_evals += e.v;
    unions += e.unions;
    repaired += e.repaired;
  }
  metrics_.add(obs::Counter::kPostCoreDistanceEvals,
               stats.post_core_distance_evals);
  metrics_.add(obs::Counter::kUnionCalls, unions);
  metrics_.add(obs::Counter::kBorderRepaired, repaired);
  finalize_metrics();
  stats.t_post = timer.seconds();
}

ClusteringResult MuDbscanEngine::extract_result() const {
  // uf_ is const in this context, which selects the non-compressing
  // read-only find — no const_cast needed.
  return extract_labels(std::as_const(uf_), is_core_, assigned_);
}

void MuDbscanEngine::query_neighborhood(
    PointId p, std::vector<std::pair<PointId, double>>& out) const {
  tree_->query_neighborhood(p, params_.eps, out);
}

ClusteringResult mu_dbscan(const Dataset& ds, const DbscanParams& params,
                           MuDbscanStats* stats, const MuDbscanConfig& cfg) {
  MuDbscanEngine engine(ds, params, cfg);
  engine.run_all();
  if (stats) *stats = engine.stats;
  return engine.extract_result();
}

}  // namespace udb
