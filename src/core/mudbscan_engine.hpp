// The µDBSCAN engine: the four algorithm phases as separately invokable
// steps, with the union-find structure, flags, and µR-tree exposed. The
// sequential entry point (mu_dbscan in mudbscan.hpp) is a thin wrapper; the
// distributed implementation (dist/mudbscan_d) drives the engine on each
// rank's halo-augmented local dataset and then reads the internals to build
// its cross-rank merge edges.

#pragma once

#include <memory>
#include <vector>

#include "common/dataset.hpp"
#include "common/parallel.hpp"
#include "common/runguard.hpp"
#include "core/mudbscan.hpp"
#include "core/murtree.hpp"
#include "obs/metrics.hpp"
#include "unionfind/union_find.hpp"

namespace udb {

class MuDbscanEngine {
 public:
  MuDbscanEngine(const Dataset& ds, const DbscanParams& params,
                 MuDbscanConfig cfg = {});
  // Merges the engine's metrics into cfg.metrics (when supplied), so a
  // run-level registry accumulates across engines — e.g. one per simulated
  // rank — without any caller bookkeeping.
  ~MuDbscanEngine();

  // Phase 1+2 (Algorithm 3): micro-cluster formation, µR-tree construction,
  // inner-circle counts. Fills stats.t_tree.
  void build_tree();

  // Algorithm 5: reachable-MC lists. Fills stats.t_reach.
  void find_reachable();

  // Algorithms 4 + 6: preliminary clusters from DMC/CMC classification, then
  // PROCESS-REM-POINTS with dynamic wndq promotion. Fills stats.t_cluster.
  void cluster();

  // Algorithms 7 + 8: POST-PROCESSING-CORE and POST-PROCESSING-NOISE.
  // Fills stats.t_post.
  void post_process();

  void run_all() {
    build_tree();
    find_reachable();
    cluster();
    post_process();
  }

  [[nodiscard]] ClusteringResult extract_result() const;

  // Exact eps-neighborhood query through the µR-tree (used by the
  // distributed boundary-edge pass). Valid after cluster().
  void query_neighborhood(PointId p,
                          std::vector<std::pair<PointId, double>>& out) const;

  [[nodiscard]] const MuRTree& tree() const { return *tree_; }
  [[nodiscard]] const Dataset& dataset() const { return *ds_; }
  [[nodiscard]] const DbscanParams& params() const { return params_; }
  [[nodiscard]] UnionFind& uf() { return uf_; }
  [[nodiscard]] const std::vector<std::uint8_t>& core_flags() const {
    return is_core_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& assigned_flags() const {
    return assigned_;
  }
  // Marks a point as belonging to some cluster (used by the distributed
  // merge when a remote core adopts a local border point).
  void mark_assigned(PointId p) { assigned_[p] = 1; }

  // The run guard governing this engine: the external cfg.guard when one was
  // supplied, the engine-owned guard when cfg limits are set, else null.
  [[nodiscard]] RunGuard* guard() const noexcept { return guard_; }

  // Merged view of the engine's per-thread metric shards (obs/metrics.hpp):
  // the query-avoidance ledger, µR-tree internals, histograms. Complete
  // after post_process(); safe to call between phases for a partial view.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }

  // Per-worker busy/jobs totals of the engine's pool; empty for the
  // sequential engine (num_threads == 1).
  [[nodiscard]] std::vector<ThreadPool::WorkerStats> worker_stats() const {
    return pool_ ? pool_->worker_stats()
                 : std::vector<ThreadPool::WorkerStats>{};
  }

  MuDbscanStats stats;

 private:
  // Thread-parallel variants of the phase bodies (cfg_.num_threads > 1):
  // exact-equivalent to the sequential code paths, see docs/PARALLEL.md for
  // the decomposition and the determinism argument.
  void cluster_parallel();
  void post_process_parallel();

  // Trues up the budget charge for the engine-owned worklists (wndq list +
  // provisional-noise CSR) after the clustering phase sized them.
  void charge_scratch();

  // Dumps the phase-end counters that live outside the registry (µR-tree
  // index counters, MC-size / reachable-length histograms) into metrics_.
  // Called once at the end of post_process().
  void finalize_metrics();

  const Dataset* ds_;
  DbscanParams params_;
  MuDbscanConfig cfg_;
  std::unique_ptr<RunGuard> owned_guard_;  // set when cfg carries limits only
  RunGuard* guard_ = nullptr;              // cfg.guard or owned_guard_.get()
  ScopedCharge flags_charge_;              // flag vectors + union-find
  ScopedCharge scratch_charge_;            // noise CSR + worklists (trued up)
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  // Engine-owned metrics registry: always collected (the cost is per-thread
  // relaxed stores), merged into cfg_.metrics on destruction when set.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<MuRTree> tree_;
  UnionFind uf_;
  std::vector<std::uint8_t> is_core_;
  std::vector<std::uint8_t> wndq_;      // tagged wndq-core (skips its query)
  std::vector<std::uint8_t> assigned_;  // united into some cluster
  std::vector<PointId> wndq_list_;      // Algorithm 7 worklist
  // noiseList with stored neighborhoods (Algorithm 8): flattened CSR buffer.
  // Invariant (established in the constructor): noise_off_ always holds
  // noise_pts_.size() + 1 offsets, even with zero noise points.
  std::vector<PointId> noise_pts_;
  std::vector<std::uint32_t> noise_off_;
  std::vector<PointId> noise_nbrs_;
};

}  // namespace udb
