// Incremental µDBSCAN (docs/INCREMENTAL.md): exact insert/delete maintenance
// of the micro-cluster summary and the cluster graph, so `result()` after any
// interleaved update sequence equals mu_dbscan() fit-from-scratch on the
// surviving points — without a global recompute per update.
//
// The locality argument is the paper's own (Section IV): a point's
// eps-neighborhood lives inside micro-clusters whose centres are within
// eps + eps of it (members are strictly within eps of their centre —
// mc_candidate_radius in core/microcluster.hpp), DMC/CMC status is a pure
// function of per-MC counts (Lemmas 1-2), and cluster-graph connectivity is
// confined to reachable MCs (Lemma 3). An update therefore perturbs a
// bounded region:
//
//   INSERT p: one neighborhood scan counts N(p) and bumps |N(q)| for each
//   neighbor q; points crossing the MinPts threshold are *promoted* —
//   insertion is monotone, core status is never revoked. Each promotion
//   links the new core into the cluster graph with a union-find merge over
//   its core neighbors (the only edges that can appear are incident to a
//   new core).
//
//   ERASE x: neighbors lose one count; cores falling below MinPts are
//   *demoted*. The only edges that can disappear are incident to the failed
//   set F = {x if core} ∪ demoted, so a cluster can only split along F. The
//   scoped re-check seeds a BFS from the surviving cores adjacent to F:
//   every surviving component of an affected cluster contains such a seed
//   (walk any old core-path toward the failure — the first failed node's
//   predecessor is still core, adjacent to F, and in the walker's
//   component). The BFS stops as soon as one traversal has covered every
//   seed (no split, the common case); only a real split pays for component
//   enumeration, and only over the affected cluster.
//
// Border points are maintained as a nearest-core cache ((d2, id)-minimal
// core strictly within eps), which makes result() canonical (see
// metrics/exactness.hpp: canonicalize_clustering) and O(survivors) with
// zero queries.
//
// Fallback policy: an optional cap on micro-clusters touched per update.
// When a pathological update (eps spanning the whole domain) exceeds it,
// the engine abandons the *local* graph repair and relabels globally from
// its own maintained counts — still exact, predictable cost, counted in
// inc_full_fallbacks. Counts and core flags are always maintained exactly
// and never fall back.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/dataset.hpp"
#include "core/microcluster.hpp"
#include "index/rtree.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

class IncrementalMuDbscan {
 public:
  struct Config {
    // Micro-clusters touched per update before the local graph repair is
    // abandoned for a global relabel (docs/INCREMENTAL.md §Fallback).
    // 0 = no cap: always repair locally.
    std::size_t max_touched_mcs_per_update = 0;
    // Optional parent metrics registry (not owned): inc_mcs_touched,
    // inc_graph_edges_repaired, inc_full_fallbacks and the inc_blast_radius
    // histogram are recorded per update when set.
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t mcs_touched = 0;         // candidate MCs scanned, cumulative
    std::uint64_t graph_edges_repaired = 0;  // unions + split relabel writes
    std::uint64_t full_fallbacks = 0;      // updates that hit the cap
  };

  // Two overloads instead of `Config cfg = {}`: a nested aggregate's default
  // member initializers are not usable as a default argument while the
  // enclosing class is still incomplete (GCC rejects it).
  IncrementalMuDbscan(std::size_t dim, const DbscanParams& params);
  IncrementalMuDbscan(std::size_t dim, const DbscanParams& params, Config cfg);

  // Ingest one point. Returned ids are dense, stable, and never reused;
  // after erasures they are *not* positions in result()/survivors() order.
  PointId insert(std::span<const double> pt);

  // Remove a point by id. Returns false if the id was never allocated or is
  // already erased. Exact: core flags, counts, labels and border attachments
  // of every surviving point are repaired before returning.
  bool erase(PointId id);

  // Remove the first (lowest-id) alive point whose coordinates are bitwise
  // equal to `pt` (memcmp semantics: -0.0 != +0.0, NaNs match by payload).
  // Returns the erased id, or kInvalidPoint if no alive point matches.
  // This is the WAL-tombstone replay primitive (docs/ROBUSTNESS.md).
  PointId erase_equal(std::span<const double> pt);

  [[nodiscard]] std::size_t size() const noexcept { return alive_count_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const DbscanParams& params() const noexcept { return params_; }
  [[nodiscard]] bool alive(PointId id) const noexcept {
    return id < total_ && alive_[id] != 0;
  }
  [[nodiscard]] std::span<const double> point(PointId id) const noexcept {
    return {ptr(id), dim_};
  }
  [[nodiscard]] std::size_t num_mcs() const noexcept { return live_mcs_; }
  // Exact maintained core count (|{alive p : |N_eps(p)| >= MinPts}|).
  [[nodiscard]] std::size_t num_core() const noexcept { return core_count_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Canonical exact clustering of the alive points in insertion order:
  // identical (plain vector equality) to
  //   canonicalize_clustering(survivors(), params, mu_dbscan(survivors()))
  // after any interleaved insert/erase sequence. O(survivors), no queries.
  [[nodiscard]] ClusteringResult result() const;

  // The alive points as one contiguous Dataset in insertion order — the
  // point set result() is aligned with.
  [[nodiscard]] Dataset survivors() const;

  // Test hook: recomputes counts/flags/borders brute-force and throws
  // std::logic_error on any divergence from the maintained state. O(n^2).
  void check_invariants() const;

 private:
  struct Mc {
    std::vector<double> center;    // owned copy: survives centre-point erasure
    std::vector<PointId> members;  // may contain erased ids until compacted
    std::uint32_t alive_members = 0;
    bool in_tree = true;  // false once a centres-tree rebuild dropped it
  };

  [[nodiscard]] const double* ptr(PointId id) const noexcept {
    return chunks_[id / kChunkPoints].get() +
           static_cast<std::size_t>(id % kChunkPoints) * dim_;
  }

  // All alive points strictly within eps of q (excluding `exclude`), as
  // (id, squared distance) pairs. Bumps *touched by the candidate MCs
  // scanned.
  void collect_neighbors(const double* q, PointId exclude,
                         std::vector<std::pair<PointId, double>>& out,
                         std::size_t* touched) const;

  void assign_to_mc(PointId id, const double* pt);
  void compact_members(Mc& mc);
  void maybe_rebuild_centers();

  // Label union-find (labels are slots in label_parent_, grown on demand).
  [[nodiscard]] std::int64_t find_label(std::int64_t l) const;
  std::int64_t fresh_label();
  std::int64_t union_labels(std::int64_t a, std::int64_t b);

  void promote_core(PointId x,
                    const std::vector<std::pair<PointId, double>>* known_nbrs,
                    std::size_t* touched);
  void maybe_improve_border(PointId q, PointId core, double d2);
  void recompute_border(PointId q, std::size_t* touched);

  // Scoped split re-check after an erasure (docs/INCREMENTAL.md §Delete).
  void repair_after_failures(const std::vector<PointId>& failed,
                             const std::vector<std::pair<PointId, double>>&
                                 failed_nbrs_flat,
                             const std::vector<std::size_t>& failed_nbrs_off,
                             std::size_t* touched);

  // Fallback: global relabel + border rebuild from maintained counts.
  void rebuild_labels_global();

  void finish_update(std::size_t touched, std::uint64_t edges_delta,
                     bool fell_back);

  std::size_t dim_;
  DbscanParams params_;
  Config cfg_;
  double eps2_;

  // Chunked coordinate storage: pointer-stable across growth.
  static constexpr std::size_t kChunkPoints = 4096;
  std::vector<std::unique_ptr<double[]>> chunks_;
  std::size_t total_ = 0;
  std::size_t alive_count_ = 0;
  std::size_t core_count_ = 0;

  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> nbr_count_;  // |N_eps strict|, self included
  std::vector<std::uint8_t> is_core_;
  std::vector<McId> mc_of_;

  std::vector<Mc> mcs_;
  std::size_t live_mcs_ = 0;
  RTree centers_;
  std::size_t center_entries_ = 0;       // entries in centers_ (incl. dead)
  std::size_t dead_center_entries_ = 0;  // tombstoned MCs still in centers_

  mutable std::vector<std::int64_t> label_parent_;  // mutable: path halving
  std::vector<std::int64_t> label_size_;            // union-by-size heuristic
  std::vector<std::int64_t> core_label_;  // per point; valid iff is_core_

  // Nearest-core border cache: for alive non-core q, border_core_[q] is the
  // (d2, id)-minimal alive core strictly within eps, or kInvalidPoint
  // (noise). Labels of borders are read through it at result() time, so
  // split relabels never touch borders.
  std::vector<PointId> border_core_;
  std::vector<double> border_d2_;

  // Per-update visit stamps (BFS visited set without clearing).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t stamp_gen_ = 0;

  Stats stats_;
};

}  // namespace udb
