#include "core/murtree.hpp"

#include <stdexcept>

#include "common/distance.hpp"
#include "obs/trace.hpp"

namespace udb {

namespace {
// Sequential-sweep checkpoint stride: cheap relative to the per-point index
// probes, frequent enough that cancellation latency stays in the low
// milliseconds even on slow hosts.
constexpr std::size_t kBuildCheckStride = 2048;
}  // namespace

MuRTree::MuRTree(const Dataset& ds, double eps, Config cfg, ThreadPool* pool)
    : ds_(&ds), eps_(eps), cfg_(cfg), level1_(ds.dim(), cfg.level1) {
  if (!(eps > 0.0)) throw std::invalid_argument("MuRTree: eps must be > 0");
  const std::size_t n = ds.size();
  RunGuard* guard = cfg_.guard;

  // Up-front charge for the per-point map and a conservative floor for the
  // member lists (every point appears in exactly one MC): a budget too small
  // for even the skeleton fails here, before the expensive sweep starts.
  if (guard)
    mem_charge_.acquire_throw(guard,
                              n * (sizeof(McId) + sizeof(PointId)),
                              "murtree skeleton");
  point_mc_.assign(n, kInvalidMc);

  // Pass 1 (Algorithm 3, BUILD-MICRO-CLUSTERS): assign within eps, defer
  // within 2*eps, otherwise found a new MC.
  obs::Span assign_span(cfg_.tracer, "build.assign");
  std::vector<PointId> unassigned;
  for (std::size_t i = 0; i < n; ++i) {
    if (guard && i % kBuildCheckStride == 0)
      guard->check_throw("murtree build pass 1");
    const PointId p = static_cast<PointId>(i);
    const auto pt = ds.point(p);
    const McId hit = static_cast<McId>(level1_.first_within(pt, eps_));
    if (hit != kInvalidMc) {
      mcs_[hit].members.push_back(p);
      point_mc_[p] = hit;
      continue;
    }
    if (cfg_.two_eps_rule &&
        level1_.first_within(pt, 2.0 * eps_) != kInvalidPoint) {
      unassigned.push_back(p);
      continue;
    }
    create_mc(p);
  }
  deferred_ = unassigned.size();

  // Pass 2 (PROCESS-UNASSIGNED-POINT): join within eps or found a new MC.
  for (std::size_t i = 0; i < unassigned.size(); ++i) {
    if (guard && i % kBuildCheckStride == 0)
      guard->check_throw("murtree build pass 2");
    const PointId p = unassigned[i];
    const auto pt = ds.point(p);
    const McId hit = static_cast<McId>(level1_.first_within(pt, eps_));
    if (hit != kInvalidMc) {
      mcs_[hit].members.push_back(p);
      point_mc_[p] = hit;
    } else {
      create_mc(p);
    }
  }

  assign_span.end();

  // AuxR-trees: one small R-tree per MC over its members (STR-packed by
  // default; the members are all known at this point). Each MC's tree is
  // independent, so the builds run in parallel when a pool is supplied; the
  // result is identical for any thread count. With a guard, every 32-MC
  // chunk is a cooperative checkpoint (see parallel_for_chunked).
  obs::Span aux_span(cfg_.tracer, "build.aux_trees");
  aux_.reserve(mcs_.size());
  for (std::size_t z = 0; z < mcs_.size(); ++z)
    aux_.emplace_back(ds.dim(), cfg_.aux);
  parallel_for_chunked(
      pool, mcs_.size(), 32,
      [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t z = begin; z < end; ++z) {
          const MicroCluster& mc = mcs_[z];
          if (cfg_.bulk_aux) {
            std::vector<std::pair<const double*, PointId>> items;
            items.reserve(mc.members.size());
            for (PointId q : mc.members) items.emplace_back(ds_->ptr(q), q);
            aux_[z] =
                RTree::bulk_load_str(ds_->dim(), std::move(items), cfg_.aux);
          } else {
            for (PointId q : mc.members) aux_[z].insert(ds_->ptr(q), q);
          }
        }
      },
      guard);

  // True up the budget charge to the real footprint now that the trees
  // exist. The index is the run's dominant allocation after the dataset
  // itself, so this is where an undersized budget is meant to trip.
  if (guard) {
    std::size_t bytes = n * sizeof(McId) + level1_.memory_bytes();
    for (const MicroCluster& mc : mcs_)
      bytes += vector_bytes(mc.members) + vector_bytes(mc.reach) +
               sizeof(MicroCluster);
    for (const RTree& t : aux_) bytes += t.memory_bytes();
    mem_charge_.acquire_throw(guard, bytes, "murtree index");
  }
}

McId MuRTree::create_mc(PointId center) {
  const McId id = static_cast<McId>(mcs_.size());
  MicroCluster mc;
  mc.center = center;
  mc.members.push_back(center);
  mcs_.push_back(std::move(mc));
  point_mc_[center] = id;
  // The level-1 entry's coordinates alias the dataset buffer, which outlives
  // the tree; the entry id is the MC id.
  level1_.insert(ds_->ptr(center), id);
  return id;
}

void MuRTree::compute_inner_circles(ThreadPool* pool) {
  obs::Span span(cfg_.tracer, "build.inner_circles");
  const double half2 = (eps_ / 2.0) * (eps_ / 2.0);
  // Each iteration reads shared immutable coordinates and writes only its own
  // MC's ic_count — embarrassingly parallel, identical for any thread count.
  parallel_for_chunked(
      pool, mcs_.size(), 64,
      [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t z = begin; z < end; ++z) {
          MicroCluster& mc = mcs_[z];
          const double* c = ds_->ptr(mc.center);
          std::uint32_t cnt = 0;
          for (PointId q : mc.members) {
            if (q == mc.center) continue;
            if (sq_dist(c, ds_->ptr(q), ds_->dim()) < half2) ++cnt;
          }
          mc.ic_count = cnt;
        }
      },
      cfg_.guard);
}

void MuRTree::compute_reachable(ThreadPool* pool) {
  obs::Span span(cfg_.tracer, "build.reachable");
  // Lemma 3: a query from any member of MC(p) can only reach members of MCs
  // whose centre is within 3*eps of p (<=, not <: the lemma's bound is
  // attained when the query point sits on the MC boundary). The level-1 tree
  // is read-only here, so the per-MC ball queries run in parallel.
  const double reach_r = 3.0 * eps_;
  parallel_for_chunked(
      pool, mcs_.size(), 64,
      [&](std::size_t begin, std::size_t end, unsigned) {
        std::vector<PointId> hits;
        for (std::size_t z = begin; z < end; ++z) {
          hits.clear();
          level1_.query_ball(ds_->point(mcs_[z].center), reach_r, hits,
                             /*strict=*/false);
          mcs_[z].reach.assign(hits.begin(), hits.end());
        }
      },
      cfg_.guard);

  // The reach lists are quadratic in the worst case (every MC reaches every
  // MC when eps spans the domain) — charge them now that their size is known.
  if (cfg_.guard) {
    std::size_t reach_bytes = 0;
    for (const MicroCluster& mc : mcs_) reach_bytes += vector_bytes(mc.reach);
    mem_charge_.acquire_throw(cfg_.guard, mem_charge_.bytes() + reach_bytes,
                              "murtree reach lists");
  }
}

void MuRTree::query_neighborhood(
    PointId p, double radius,
    const std::function<void(PointId, double)>& fn) const {
  const McId z = point_mc_[p];
  const auto pt = ds_->point(p);
  for (McId r : mcs_[z].reach) {
    // Filtration (Section IV-B2): skip reachable MCs whose AuxR-tree MBR
    // does not intersect the query ball.
    if (!aux_[r].root_mbr().overlaps_ball(pt, radius)) continue;
    aux_searched_.fetch_add(1, std::memory_order_relaxed);
    aux_[r].visit_ball(
        pt, radius,
        [&fn](PointId id, double d2) {
          fn(id, d2);
          return true;
        },
        /*strict=*/true);
  }
}

void MuRTree::query_neighborhood(
    PointId p, double radius,
    std::vector<std::pair<PointId, double>>& out) const {
  query_neighborhood(p, radius,
                     [&out](PointId id, double d2) { out.emplace_back(id, d2); });
}

void MuRTree::query_neighborhood(
    std::span<const double> q, double radius,
    const std::function<void(PointId, double)>& fn) const {
  if (q.size() != ds_->dim())
    throw std::invalid_argument("MuRTree::query_neighborhood: wrong dimension");
  // Candidate MCs: centres within radius + eps (<=, so a member exactly at
  // `radius` whose centre sits at the bound is never missed).
  std::vector<PointId> centers;
  level1_.query_ball(q, mc_candidate_radius(radius, eps_), centers,
                     /*strict=*/false);
  for (PointId r : centers) {
    if (!aux_[r].root_mbr().overlaps_ball(q, radius)) continue;
    aux_searched_.fetch_add(1, std::memory_order_relaxed);
    aux_[r].visit_ball(
        q, radius,
        [&fn](PointId id, double d2) {
          fn(id, d2);
          return true;
        },
        /*strict=*/true);
  }
}

void MuRTree::query_neighborhood(
    std::span<const double> q, double radius,
    std::vector<std::pair<PointId, double>>& out) const {
  query_neighborhood(q, radius,
                     [&out](PointId id, double d2) { out.emplace_back(id, d2); });
}

MuRTree::IndexCounters MuRTree::index_counters() const {
  IndexCounters c;
  c.node_visits = level1_.node_visits();
  c.distance_evals = level1_.distance_evals();
  c.kernel_blocks = level1_.kernel_blocks();
  c.kernel_tail_points = level1_.kernel_tail_points();
  for (const RTree& t : aux_) {
    c.node_visits += t.node_visits();
    c.distance_evals += t.distance_evals();
    c.kernel_blocks += t.kernel_blocks();
    c.kernel_tail_points += t.kernel_tail_points();
  }
  return c;
}

void MuRTree::check_invariants() const {
  const std::size_t n = ds_->size();
  const double eps2 = eps_ * eps_;
  std::vector<std::uint8_t> seen(n, 0);
  for (McId z = 0; z < mcs_.size(); ++z) {
    const MicroCluster& mc = mcs_[z];
    if (mc.members.empty() || mc.members.front() == kInvalidPoint)
      throw std::logic_error("MuRTree: malformed MC");
    const double* c = ds_->ptr(mc.center);
    bool center_listed = false;
    for (PointId q : mc.members) {
      if (seen[q]) throw std::logic_error("MuRTree: point in two MCs");
      seen[q] = 1;
      if (point_mc_[q] != z)
        throw std::logic_error("MuRTree: point_mc mismatch");
      if (q == mc.center) {
        center_listed = true;
        continue;
      }
      if (sq_dist(c, ds_->ptr(q), ds_->dim()) >= eps2)
        throw std::logic_error("MuRTree: member farther than eps from centre");
    }
    if (!center_listed)
      throw std::logic_error("MuRTree: centre not among members");
    aux_[z].check_invariants();
    if (aux_[z].size() != mc.members.size())
      throw std::logic_error("MuRTree: aux tree size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i)
    if (!seen[i]) throw std::logic_error("MuRTree: unassigned point");
  level1_.check_invariants();
}

}  // namespace udb
