// Micro-clusters (Section IV-A of the paper): a micro-cluster MC(p) is the
// hypersphere of radius eps centred at data point p together with the points
// assigned to it; every point belongs to exactly one MC. The inner circle
// IC(MC) is the subset of members strictly within eps/2 of the centre
// (strict, not the paper's <=: strictness makes Lemma 1's pairwise-< eps
// argument airtight even for adversarial coordinates — see DESIGN.md).
//
// Classification (Fig. 2):
//   DMC (dense):  |IC| >= MinPts — every IC point is core without a query
//                 (Lemma 1), and so is the centre;
//   CMC (core):   |MC| >= MinPts — the centre is core without a query
//                 (Lemma 2);
//   SMC (sparse): everything else.

#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

using McId = std::uint32_t;
constexpr McId kInvalidMc = static_cast<McId>(-1);

enum class McKind : std::uint8_t { Sparse, Core, Dense };

// Candidate-MC radius for a ball query: every member lies strictly within
// eps of its MC centre, so any member within `radius` of a query position
// belongs to an MC whose centre is within radius + eps (non-strict: the
// triangle-inequality bound is attained at the boundary). Shared by the
// µR-tree's arbitrary-position queries and the incremental engine's
// micro-cluster-accelerated neighborhood scans.
[[nodiscard]] constexpr double mc_candidate_radius(double radius,
                                                   double eps) noexcept {
  return radius + eps;
}

struct MicroCluster {
  PointId center = kInvalidPoint;
  std::vector<PointId> members;  // includes the centre
  std::uint32_t ic_count = 0;    // members (centre excluded) with dist < eps/2
  std::vector<McId> reach;       // reachable MCs: centres within 3*eps (self included)

  [[nodiscard]] McKind classify(std::uint32_t min_pts) const noexcept {
    if (ic_count >= min_pts) return McKind::Dense;
    if (members.size() >= min_pts) return McKind::Core;
    return McKind::Sparse;
  }
};

}  // namespace udb
