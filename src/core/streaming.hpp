// Streaming µDBSCAN — the paper's stated future work ("this approach can
// also be adopted to fast clustering of data streams", Section VII),
// realized with the classic online/offline split of the stream-clustering
// literature the paper's micro-cluster notion descends from (CluStream):
//
//   * ONLINE: every arriving point (or tombstone) is absorbed by the
//     incremental engine (core/incremental.hpp): micro-cluster assignment,
//     exact neighbor-count maintenance, and a scoped cluster-graph repair.
//     Core counts are exact at every instant — no lower-bound slack.
//   * OFFLINE: result() is the exact DBSCAN clustering of everything alive
//     (identical, after canonicalization, to batch µDBSCAN over the same
//     points) — extracted from the maintained state in O(survivors) with
//     zero neighborhood queries, cached until the next mutation.
//
// This class is the serving-facing adapter: it owns the offline caches
// (result + contiguous dataset view) and batch-granular invalidation, and
// delegates all clustering state to IncrementalMuDbscan.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/dataset.hpp"
#include "core/incremental.hpp"
#include "core/mudbscan.hpp"

namespace udb {

class StreamingMuDbscan {
 public:
  // `cfg` carries the shared engine knobs (metrics registry); `inc_cfg`
  // the incremental-specific ones (blast-radius cap). When inc_cfg has no
  // registry of its own, cfg.metrics is used, so callers that already wire
  // a registry through MuDbscanConfig get the inc_* counters for free.
  StreamingMuDbscan(std::size_t dim, const DbscanParams& params,
                    MuDbscanConfig cfg = {},
                    IncrementalMuDbscan::Config inc_cfg = {});

  // Online ingestion: one incremental engine update per point.
  PointId insert(std::span<const double> pt);
  // Whole-batch ingestion with batch-granular cache invalidation: the
  // offline caches are dropped once up front, never per point.
  void insert_batch(const Dataset& ds);

  // Online removal (docs/INCREMENTAL.md). erase() by the id insert()
  // returned; erase_equal() by bitwise-equal coordinates (the WAL-tombstone
  // replay primitive). Both repair the clustering before returning.
  bool erase(PointId id);
  PointId erase_equal(std::span<const double> pt);

  [[nodiscard]] std::size_t size() const noexcept { return engine_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return engine_.dim(); }
  [[nodiscard]] const DbscanParams& params() const noexcept {
    return engine_.params();
  }
  [[nodiscard]] const MuDbscanConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_mcs() const noexcept {
    return engine_.num_mcs();
  }

  // Historically a query-free Lemma 1/2 lower bound; the incremental engine
  // maintains the exact core count query-free, so the tightest possible
  // lower bound is the count itself. Kept under the old name for callers
  // that only rely on soundness (bound <= exact).
  [[nodiscard]] std::size_t guaranteed_core_lower_bound() const noexcept {
    return engine_.num_core();
  }

  // Incremental-maintenance telemetry (blast radius, repairs, fallbacks).
  [[nodiscard]] const IncrementalMuDbscan::Stats& update_stats()
      const noexcept {
    return engine_.stats();
  }

  // Direct engine access (read-only): point lookup by id, invariant audits.
  [[nodiscard]] const IncrementalMuDbscan& engine() const noexcept {
    return engine_;
  }

  // Exact canonical DBSCAN clustering of all alive points in insertion
  // order — equals canonicalize_clustering(dataset(), params, mu_dbscan())
  // after any interleaved insert/erase sequence. Cached until the next
  // mutation; extraction is O(survivors) with zero neighborhood queries.
  const ClusteringResult& result();

  // The alive points as one contiguous Dataset in insertion order — the
  // point set result() is aligned with. Insert-only growth appends to the
  // cached buffer; an erase since the last call forces a rebuild.
  const Dataset& dataset();

 private:
  MuDbscanConfig cfg_;
  IncrementalMuDbscan engine_;

  // Offline caches, dropped on any mutation (once per batch for
  // insert_batch). materialized_ tracks the engine ids it covers plus the
  // erase counter at build time: with no new erases the cached prefix is
  // still exactly the alive ids below materialized_total_, so growth is an
  // append; any erase invalidates the prefix wholesale.
  std::optional<ClusteringResult> cached_;
  std::optional<Dataset> materialized_;
  std::size_t materialized_total_ = 0;
  std::uint64_t materialized_deletes_ = 0;
};

}  // namespace udb
