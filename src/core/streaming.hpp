// Streaming µDBSCAN — the paper's stated future work ("this approach can
// also be adopted to fast clustering of data streams", Section VII),
// realized with the classic online/offline split of the stream-clustering
// literature the paper's micro-cluster notion descends from (CluStream):
//
//   * ONLINE: every arriving point is absorbed into the micro-cluster
//     structure in O(log m) — join the first MC whose centre is strictly
//     within eps, else found a new MC. Running DMC/CMC classification gives
//     instant *guaranteed* core-point counts (Lemmas 1 & 2 hold online: a
//     point provably core now stays core as more points arrive, because
//     core status is monotone in the point set).
//   * OFFLINE: result() produces the exact DBSCAN clustering of everything
//     ingested so far (identical to batch µDBSCAN over the same points),
//     recomputed lazily and cached until the next insertion.
//
// Coordinates live in chunked storage so pointers handed to the level-1
// R-tree stay stable across insertions.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/dataset.hpp"
#include "core/mudbscan.hpp"
#include "index/rtree.hpp"

namespace udb {

class StreamingMuDbscan {
 public:
  StreamingMuDbscan(std::size_t dim, const DbscanParams& params,
                    MuDbscanConfig cfg = {});

  // Online ingestion: O(log m) micro-cluster assignment.
  PointId insert(std::span<const double> pt);
  void insert_batch(const Dataset& ds);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const DbscanParams& params() const noexcept { return params_; }
  [[nodiscard]] const MuDbscanConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_mcs() const noexcept {
    return mc_sizes_.size();
  }

  // Lower bound on the number of core points among everything ingested,
  // maintained online with zero neighborhood queries: inner-circle members
  // of dense MCs plus centres of core MCs (Lemmas 1 & 2). The exact count
  // (from result()) is always >= this.
  [[nodiscard]] std::size_t guaranteed_core_lower_bound() const noexcept;

  // Exact DBSCAN clustering of all points ingested so far — identical to
  // mu_dbscan() over the same points in insertion order. Cached; recomputed
  // only after new insertions. Also exposes the batch stats of the last
  // recomputation.
  const ClusteringResult& result();
  [[nodiscard]] const MuDbscanStats& last_stats() const { return stats_; }

  // The ingested points as one contiguous Dataset in insertion order —
  // the point set result() clustered. Materializes (incrementally: only
  // points ingested since the previous materialization are appended to the
  // cached buffer) but does not trigger the offline clustering.
  const Dataset& dataset();

 private:
  [[nodiscard]] const double* stored_ptr(PointId id) const noexcept;
  void materialize();

  std::size_t dim_;
  DbscanParams params_;
  MuDbscanConfig cfg_;

  // Chunked coordinate storage: pointer-stable across growth.
  static constexpr std::size_t kChunkPoints = 4096;
  std::vector<std::unique_ptr<double[]>> chunks_;
  std::size_t count_ = 0;

  // Online micro-cluster summary.
  RTree centers_;                        // level-1 tree over MC centres
  std::vector<std::uint32_t> mc_sizes_;  // members per MC (centre included)
  std::vector<std::uint32_t> mc_ic_;     // strict inner-circle counts
  std::vector<PointId> mc_center_;       // centre point id per MC

  // Offline cache. materialized_ holds the first materialized_count_ ingested
  // points and only ever grows — a recompute appends the chunks added since
  // the previous materialization instead of rebuilding the whole buffer.
  std::optional<ClusteringResult> cached_;
  std::optional<Dataset> materialized_;
  std::size_t materialized_count_ = 0;
  MuDbscanStats stats_;
};

}  // namespace udb
