#include "core/microcluster.hpp"

// MicroCluster is a plain aggregate; this translation unit anchors it in the
// library alongside murtree.cpp and mudbscan.cpp.

namespace udb {}  // namespace udb
