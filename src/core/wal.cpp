#include "core/wal.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <utility>

#include "serve/crc32.hpp"
#include "serve/wire.hpp"

namespace udb {

namespace {

std::vector<std::uint8_t> encode_wal_header(std::size_t dim,
                                            std::uint64_t epoch) {
  serve::ByteWriter w;
  w.raw(kWalMagic, sizeof kWalMagic);
  w.u32(kWalVersion);
  w.u64(dim);
  w.u64(epoch);
  return w.take();
}

struct WalScan {
  std::size_t dim = 0;
  std::uint32_t version = 0;
  std::uint64_t epoch = 0;
  std::vector<double> coords;
  std::vector<std::uint64_t> starts;
  std::vector<std::uint64_t> counts;
  std::vector<std::uint8_t> types;
  std::uint64_t records = 0;
  std::size_t committed_bytes = 0;  // header + every committed record
  std::uint64_t torn_bytes = 0;
};

// Walks the byte image, accepting the longest valid prefix. Only header
// problems are errors: a bad record merely ends the committed prefix, because
// that is exactly what a crash mid-append leaves behind.
StatusOr<WalScan> scan_wal(std::span<const std::uint8_t> bytes,
                           std::size_t expected_dim,
                           const std::string& origin) {
  if (bytes.size() < kWalV1HeaderBytes)
    return DataLossError("wal: " + origin + " too small to hold a header (" +
                         std::to_string(bytes.size()) + " bytes)");
  serve::ByteReader h(bytes.subspan(0, kWalV1HeaderBytes));
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t dim = 0;
  if (!h.raw(magic, sizeof magic) || !h.u32(version) || !h.u64(dim) ||
      std::memcmp(magic, kWalMagic, sizeof magic) != 0)
    return DataLossError("wal: " + origin + " has no WAL header (bad magic)");
  if (version != 1 && version != kWalVersion)
    return DataLossError("wal: " + origin + " is version " +
                         std::to_string(version) + ", this build reads 1.." +
                         std::to_string(kWalVersion));
  std::uint64_t epoch = 0;
  const std::size_t header_bytes =
      version == 1 ? kWalV1HeaderBytes : kWalHeaderBytes;
  if (version >= 2) {
    if (bytes.size() < kWalHeaderBytes)
      return DataLossError("wal: " + origin + " truncated inside the header");
    std::memcpy(&epoch, bytes.data() + kWalV1HeaderBytes, 8);
  }
  if (dim == 0 || dim > std::numeric_limits<std::size_t>::max() / sizeof(double))
    return DataLossError("wal: " + origin + " header has absurd dim " +
                         std::to_string(dim));
  if (expected_dim != 0 && dim != expected_dim)
    return DataLossError("wal: " + origin + " holds dim-" +
                         std::to_string(dim) + " points, expected dim " +
                         std::to_string(expected_dim));

  WalScan out;
  out.dim = static_cast<std::size_t>(dim);
  out.version = version;
  out.epoch = epoch;
  // v2 payloads carry a leading type byte; v1 payloads start at the index.
  const std::size_t fixed = version == 1 ? 16 : 17;
  std::size_t off = header_bytes;
  while (bytes.size() - off >= 8) {
    std::uint32_t len = 0, stored_crc = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    std::memcpy(&stored_crc, bytes.data() + off + 4, 4);
    if (len < fixed || len > bytes.size() - off - 8) break;  // torn frame
    const std::uint8_t* payload = bytes.data() + off + 8;
    if (serve::crc32(payload, len) != stored_crc) break;  // torn / rotted
    std::uint8_t type = static_cast<std::uint8_t>(WalRecordType::kInsert);
    std::size_t at = 0;
    if (version >= 2) type = payload[at++];
    std::uint64_t start = 0, count = 0;
    std::memcpy(&start, payload + at, 8);
    std::memcpy(&count, payload + at + 8, 8);
    // CRC-valid but inconsistent framing still ends the prefix: it cannot
    // have come from WalWriter, so nothing after it is trustworthy either.
    if (type > static_cast<std::uint8_t>(WalRecordType::kTombstone) ||
        count == 0 || count > (len - fixed) / (out.dim * sizeof(double)) ||
        fixed + count * out.dim * sizeof(double) != len)
      break;
    const std::size_t prev = out.coords.size();
    out.coords.resize(prev + static_cast<std::size_t>(count) * out.dim);
    std::memcpy(out.coords.data() + prev, payload + fixed,
                static_cast<std::size_t>(count) * out.dim * sizeof(double));
    out.starts.push_back(start);
    out.counts.push_back(count);
    out.types.push_back(type);
    ++out.records;
    off += 8 + len;
  }
  out.committed_bytes = off;
  out.torn_bytes = bytes.size() - off;
  return out;
}

}  // namespace

WalWriter::~WalWriter() {
  if (file_.is_open()) (void)file_.close();
  release_charge();
}

WalWriter::WalWriter(WalWriter&& o) noexcept
    : path_(std::move(o.path_)),
      dim_(o.dim_),
      cfg_(o.cfg_),
      file_(std::move(o.file_)),
      records_(o.records_),
      bytes_(o.bytes_),
      next_start_(o.next_start_),
      epoch_(o.epoch_),
      charged_bytes_(o.charged_bytes_),
      open_(o.open_) {
  o.charged_bytes_ = 0;
  o.open_ = false;
}

WalWriter& WalWriter::operator=(WalWriter&& o) noexcept {
  if (this != &o) {
    if (file_.is_open()) (void)file_.close();
    release_charge();
    path_ = std::move(o.path_);
    dim_ = o.dim_;
    cfg_ = o.cfg_;
    file_ = std::move(o.file_);
    records_ = o.records_;
    bytes_ = o.bytes_;
    next_start_ = o.next_start_;
    epoch_ = o.epoch_;
    charged_bytes_ = o.charged_bytes_;
    open_ = o.open_;
    o.charged_bytes_ = 0;
    o.open_ = false;
  }
  return *this;
}

void WalWriter::release_charge() noexcept {
  if (cfg_.guard != nullptr && charged_bytes_ != 0)
    cfg_.guard->release(charged_bytes_);
  charged_bytes_ = 0;
}

StatusOr<WalWriter> WalWriter::open(const std::string& path, std::size_t dim,
                                    WalConfig cfg) {
  if (dim == 0) return InvalidArgumentError("wal: dim must be > 0");

  WalWriter w;
  w.path_ = path;
  w.dim_ = dim;
  w.cfg_ = cfg;

  auto bytes = vfs::read_file(path);
  if (bytes.ok()) {
    auto scan = scan_wal(std::span<const std::uint8_t>(*bytes), dim, path);
    if (!scan.ok()) return scan.status();
    if (scan->version != kWalVersion)
      return DataLossError(
          "wal: " + path + " is version " + std::to_string(scan->version) +
          "; this build appends version " + std::to_string(kWalVersion) +
          " records only — recover the old log, then reset() or remove it");
    if (scan->torn_bytes != 0) {
      // Cut the torn tail back to the committed prefix with an atomic
      // rewrite, so fresh appends always extend valid records.
      Status s = vfs::write_file_atomic(path, bytes->data(),
                                        scan->committed_bytes);
      if (!s.ok()) return s;
    }
    w.records_ = scan->records;
    w.bytes_ = scan->committed_bytes;
    w.epoch_ = scan->epoch;
    // Contiguity resumes from the last committed *insert* record; tombstones
    // sit outside the insert chain.
    for (std::size_t r = scan->records; r-- > 0;) {
      if (scan->types[r] ==
          static_cast<std::uint8_t>(WalRecordType::kInsert)) {
        w.next_start_ = scan->starts[r] + scan->counts[r];
        break;
      }
    }
    for (const std::uint8_t t : scan->types)
      if (t == static_cast<std::uint8_t>(WalRecordType::kInsert))
        ++w.insert_records_;
  } else if (bytes.status().code() == StatusCode::kNotFound) {
    const std::vector<std::uint8_t> header = encode_wal_header(dim, 0);
    Status s = vfs::write_file_atomic(path, header.data(), header.size());
    if (!s.ok()) return s;
    w.bytes_ = header.size();
  } else {
    return bytes.status();
  }

  if (cfg.guard != nullptr) {
    Status s = cfg.guard->try_charge(static_cast<std::size_t>(w.bytes_),
                                     "wal_open");
    if (!s.ok()) return s;
    w.charged_bytes_ = static_cast<std::size_t>(w.bytes_);
  }

  auto f = vfs::File::open_append(path);
  if (!f.ok()) return f.status();
  w.file_ = std::move(*f);
  w.open_ = true;
  return w;
}

Status WalWriter::append(std::uint64_t start_index,
                         std::span<const double> coords) {
  if (!open_)
    return InternalError("wal: append on a closed or failed writer for " +
                         path_);
  if (coords.empty() || coords.size() % dim_ != 0)
    return InvalidArgumentError(
        "wal: append of " + std::to_string(coords.size()) +
        " values is not a non-zero multiple of dim " + std::to_string(dim_));
  if (insert_records_ != 0 && start_index != next_start_)
    return InvalidArgumentError(
        "wal: append at stream index " + std::to_string(start_index) +
        " breaks contiguity (log ends at " + std::to_string(next_start_) +
        ")");
  for (double v : coords)
    if (!std::isfinite(v))
      return InvalidArgumentError("wal: non-finite coordinate in append");
  return emit_record(WalRecordType::kInsert, start_index, coords);
}

Status WalWriter::append_delete(std::span<const double> coords) {
  if (!open_)
    return InternalError("wal: append_delete on a closed or failed writer " +
                         path_);
  if (coords.empty() || coords.size() % dim_ != 0)
    return InvalidArgumentError(
        "wal: append_delete of " + std::to_string(coords.size()) +
        " values is not a non-zero multiple of dim " + std::to_string(dim_));
  // No finiteness check: a tombstone names bytes already in the stream.
  return emit_record(WalRecordType::kTombstone, 0, coords);
}

Status WalWriter::emit_record(WalRecordType type, std::uint64_t start_index,
                              std::span<const double> coords) {
  serve::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.u64(start_index);
  payload.u64(coords.size() / dim_);
  payload.raw(coords.data(), coords.size() * sizeof(double));
  serve::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(serve::crc32(payload.data().data(), payload.size()));
  frame.raw(payload.data().data(), payload.size());

  // Charge before anything hits the disk: a budget refusal must leave the
  // log byte-identical, so the caller can snapshot+reset and retry.
  if (cfg_.guard != nullptr) {
    Status s = cfg_.guard->try_charge(frame.size(), "wal_append");
    if (!s.ok()) return s;
  }

  Status s = file_.write(frame.data().data(), frame.size());
  if (s.ok() && cfg_.sync_each_append) s = file_.sync();
  if (!s.ok()) {
    // The on-disk tail is now suspect (possibly torn). Fail the writer hard;
    // reopening trims the tail back to the committed prefix.
    if (cfg_.guard != nullptr) cfg_.guard->release(frame.size());
    (void)file_.close();
    open_ = false;
    return s;
  }
  charged_bytes_ += frame.size();
  bytes_ += frame.size();
  if (type == WalRecordType::kInsert) {
    next_start_ = start_index + coords.size() / dim_;
    ++insert_records_;
  }
  ++records_;
  return Status::Ok();
}

Status WalWriter::sync() {
  if (!open_)
    return InternalError("wal: sync on a closed or failed writer for " +
                         path_);
  return file_.sync();
}

Status WalWriter::reset(std::uint64_t epoch) {
  if (!open_)
    return InternalError("wal: reset on a closed or failed writer for " +
                         path_);
  Status s = file_.close();
  open_ = false;
  if (!s.ok()) return s;

  const std::vector<std::uint8_t> header = encode_wal_header(dim_, epoch);
  s = vfs::write_file_atomic(path_, header.data(), header.size());
  if (!s.ok()) return s;

  auto f = vfs::File::open_append(path_);
  if (!f.ok()) return f.status();
  file_ = std::move(*f);
  open_ = true;
  records_ = 0;
  insert_records_ = 0;
  bytes_ = header.size();
  next_start_ = 0;
  epoch_ = epoch;
  if (cfg_.guard != nullptr && charged_bytes_ > header.size()) {
    cfg_.guard->release(charged_bytes_ - header.size());
    charged_bytes_ = header.size();
  }
  return Status::Ok();
}

Status WalWriter::close() {
  Status s = Status::Ok();
  if (file_.is_open()) s = file_.close();
  open_ = false;
  release_charge();
  return s;
}

StatusOr<WalReplay> replay_wal(const std::string& path,
                               std::size_t expected_dim) {
  auto bytes = vfs::read_file(path);
  if (!bytes.ok()) return bytes.status();
  auto scan = scan_wal(std::span<const std::uint8_t>(*bytes), expected_dim,
                       path);
  if (!scan.ok()) return scan.status();
  WalReplay out;
  out.dim = scan->dim;
  out.coords = std::move(scan->coords);
  out.starts = std::move(scan->starts);
  out.counts = std::move(scan->counts);
  out.types = std::move(scan->types);
  out.epoch = scan->epoch;
  out.records = scan->records;
  out.torn_bytes = scan->torn_bytes;
  return out;
}

}  // namespace udb
