// µR-tree (Section IV-B1, Fig. 1): a two-level R-tree. The first level
// indexes micro-cluster centres; each micro-cluster owns an auxiliary R-tree
// (AuxR-tree) over its member points. Breaking one big R-tree into a small
// tree-of-centres plus many tiny member trees stops MBR overlap from
// propagating to the leaves, which is where the paper's query-cost reduction
// comes from.
//
// Construction follows Algorithm 3: a point joins an existing MC whose centre
// is strictly within eps; otherwise, if some centre is within 2*eps, the
// point is deferred to an unassignedList (the "2-eps rule" that limits the
// number of MCs by discouraging overlapping centres); otherwise it founds a
// new MC. Deferred points are resolved in a second pass (join within eps or
// found an MC).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/dataset.hpp"
#include "common/parallel.hpp"
#include "common/runguard.hpp"
#include "core/microcluster.hpp"
#include "index/rtree.hpp"
#include "metrics/clustering.hpp"

namespace udb {

namespace obs {
class Tracer;
}

class MuRTree {
 public:
  struct Config {
    // Ablation switch: when false, skip the 2*eps deferral (every point
    // either joins an MC within eps or immediately founds one). Produces more
    // MCs; clustering stays exact either way.
    bool two_eps_rule = true;
    // AuxR-trees are built after all members are known, so STR bulk loading
    // applies (faster build, tighter MBRs). false = incremental Guttman
    // insertion, kept as an ablation.
    bool bulk_aux = true;
    RTree::Config level1;
    RTree::Config aux;
    // Optional run guard (not owned): the MC assignment sweep, AuxR-tree
    // builds, inner-circle and reachable phases run cooperative checkpoints
    // against it, and the built index structures are charged to its memory
    // budget (docs/ROBUSTNESS.md). A trip aborts construction via
    // StatusError; partial state is reclaimed on unwind.
    RunGuard* guard = nullptr;
    // Optional tracer (not owned): construction and the derived phases emit
    // build.assign / build.aux_trees / build.inner_circles / build.reachable
    // spans (docs/OBSERVABILITY.md).
    obs::Tracer* tracer = nullptr;
  };

  // `pool` (optional) parallelizes the embarrassingly parallel build stages:
  // per-MC AuxR-tree bulk loads, inner-circle counts, reachable-MC queries.
  // The MC assignment sweep itself stays sequential (points join MCs founded
  // by earlier points), so the tree is identical for every thread count.
  MuRTree(const Dataset& ds, double eps) : MuRTree(ds, eps, Config()) {}
  MuRTree(const Dataset& ds, double eps, Config cfg,
          ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t num_mcs() const noexcept { return mcs_.size(); }
  [[nodiscard]] const MicroCluster& mc(McId id) const noexcept {
    return mcs_[id];
  }
  [[nodiscard]] McId mc_of_point(PointId p) const noexcept {
    return point_mc_[p];
  }
  [[nodiscard]] const RTree& aux_tree(McId id) const noexcept {
    return aux_[id];
  }
  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] std::size_t deferred_points() const noexcept {
    return deferred_;
  }

  // Computes MC.ic_count for every MC (strict < eps/2 from centre).
  void compute_inner_circles(ThreadPool* pool = nullptr);

  // Populates MC.reach for every MC: all MCs whose centre is within 3*eps
  // (Lemma 3). Each MC's reach list includes itself.
  void compute_reachable(ThreadPool* pool = nullptr);

  // Exact eps-neighborhood of point p (Lemma 3 + MBR filtration): searches
  // only the AuxR-trees of reachable MCs of MC(p) whose root MBR intersects
  // the eps-ball of p. Visitor receives (point id, squared distance).
  void query_neighborhood(
      PointId p, double radius,
      const std::function<void(PointId, double)>& fn) const;

  // As above but into a vector of (id, squared distance) pairs.
  void query_neighborhood(PointId p, double radius,
                          std::vector<std::pair<PointId, double>>& out) const;

  // Exact radius-neighborhood of an *arbitrary* query position (not
  // necessarily a dataset point) — the serving layer's entry point
  // (src/serve/). Every member within `radius` of q belongs to an MC whose
  // centre lies within radius + eps of q (member-to-centre distance is
  // strictly < eps), so searching the AuxR-trees of those centres — with the
  // same MBR filtration as the by-id query — is exact for any radius.
  // Thread-safe: reads immutable structure, touches only atomic counters.
  void query_neighborhood(std::span<const double> q, double radius,
                          const std::function<void(PointId, double)>& fn) const;
  void query_neighborhood(std::span<const double> q, double radius,
                          std::vector<std::pair<PointId, double>>& out) const;

  // Number of MCs whose AuxR-tree was actually searched across all
  // query_neighborhood calls (for the filtration ablation). Atomic so
  // concurrent queries from the parallel engine stay race-free.
  [[nodiscard]] std::uint64_t aux_trees_searched() const noexcept {
    return aux_searched_.load(std::memory_order_relaxed);
  }

  // Aggregated R-tree instrumentation over the level-1 tree and every
  // AuxR-tree: nodes visited and point-distance evaluations across all
  // queries since construction. O(num_mcs) — call at phase boundaries, not
  // per query.
  struct IndexCounters {
    std::uint64_t node_visits = 0;
    std::uint64_t distance_evals = 0;
    std::uint64_t kernel_blocks = 0;       // leaf SoA blocks SIMD-scanned
    std::uint64_t kernel_tail_points = 0;  // points in blocks' scalar tails
  };
  [[nodiscard]] IndexCounters index_counters() const;

  // Test hook: structural invariants — every point in exactly one MC, member
  // distances < eps from the centre, level-1 / aux R-tree invariants.
  void check_invariants() const;

 private:
  McId create_mc(PointId center);

  const Dataset* ds_;
  double eps_;
  Config cfg_;
  RTree level1_;
  std::vector<MicroCluster> mcs_;
  std::vector<RTree> aux_;
  std::vector<McId> point_mc_;
  std::size_t deferred_ = 0;
  // Budget charge for the index structures (point_mc_, MC member lists,
  // level-1 tree, aux trees); released when the tree is destroyed.
  ScopedCharge mem_charge_;
  mutable std::atomic<std::uint64_t> aux_searched_{0};
};

}  // namespace udb
