#include "core/incremental.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/distance.hpp"

namespace udb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

IncrementalMuDbscan::IncrementalMuDbscan(std::size_t dim,
                                         const DbscanParams& params)
    : IncrementalMuDbscan(dim, params, Config{}) {}

IncrementalMuDbscan::IncrementalMuDbscan(std::size_t dim,
                                         const DbscanParams& params,
                                         Config cfg)
    : dim_(dim),
      params_(params),
      cfg_(cfg),
      eps2_(params.eps * params.eps),
      centers_(dim) {
  if (dim_ == 0)
    throw std::invalid_argument("IncrementalMuDbscan: dim must be > 0");
  if (!(params_.eps > 0.0))
    throw std::invalid_argument("IncrementalMuDbscan: eps must be > 0");
  if (params_.min_pts == 0)
    throw std::invalid_argument("IncrementalMuDbscan: MinPts must be >= 1");
}

// ---------------------------------------------------------------------------
// Micro-cluster layer.
// ---------------------------------------------------------------------------

void IncrementalMuDbscan::collect_neighbors(
    const double* q, PointId exclude,
    std::vector<std::pair<PointId, double>>& out, std::size_t* touched) const {
  std::vector<PointId> cands;
  centers_.query_ball({q, dim_}, mc_candidate_radius(params_.eps, params_.eps),
                      cands, /*strict=*/false);
  for (PointId cid : cands) {
    const Mc& mc = mcs_[cid];
    if (mc.alive_members == 0) continue;
    if (touched) ++*touched;
    for (PointId m : mc.members) {
      if (m == exclude || !alive_[m]) continue;
      const double d2 = sq_dist(q, ptr(m), dim_);
      if (d2 < eps2_) out.emplace_back(m, d2);
    }
  }
}

void IncrementalMuDbscan::assign_to_mc(PointId id, const double* pt) {
  // Join the first MC whose centre is strictly within eps (the streaming
  // assignment rule: no 2*eps deferral — a stream cannot replay a second
  // pass; exactness does not depend on the MC partition). A tombstoned MC
  // still in the centres tree may be revived here — its ghost centre keeps
  // the member-within-eps invariant.
  const PointId hit = centers_.first_within({pt, dim_}, params_.eps);
  if (hit != kInvalidPoint) {
    Mc& mc = mcs_[hit];
    if (mc.alive_members == 0) {
      ++live_mcs_;
      --dead_center_entries_;
      compact_members(mc);  // likely all-dead membership
    }
    mc.members.push_back(id);
    ++mc.alive_members;
    mc_of_[id] = static_cast<McId>(hit);
    if (mc.members.size() > 16 && mc.alive_members * 2 < mc.members.size())
      compact_members(mc);
    return;
  }
  const McId z = static_cast<McId>(mcs_.size());
  Mc mc;
  mc.center.assign(pt, pt + dim_);
  mc.members.push_back(id);
  mc.alive_members = 1;
  mcs_.push_back(std::move(mc));
  // The centre coordinates are the MC's own stable heap buffer (a vector
  // relocation moves the Mc struct, not the buffer), so the tree entry stays
  // valid for the MC's whole lifetime.
  centers_.insert(mcs_[z].center.data(), z);
  ++center_entries_;
  ++live_mcs_;
  mc_of_[id] = z;
}

void IncrementalMuDbscan::compact_members(Mc& mc) {
  std::erase_if(mc.members, [&](PointId m) { return !alive_[m]; });
}

void IncrementalMuDbscan::maybe_rebuild_centers() {
  // Caller just emptied one MC. The R-tree has no remove, so tombstoned
  // centres accumulate as ghost entries; once they outnumber the live ones
  // the tree is rebuilt over live centres only (dropped MCs can then never
  // be revived — `in_tree` records that).
  --live_mcs_;
  ++dead_center_entries_;
  if (center_entries_ < 64 || dead_center_entries_ * 2 <= center_entries_)
    return;
  RTree fresh(dim_);
  std::size_t entries = 0;
  for (std::size_t z = 0; z < mcs_.size(); ++z) {
    Mc& mc = mcs_[z];
    if (mc.alive_members == 0) {
      if (mc.in_tree) {
        mc.in_tree = false;
        mc.members.clear();
        mc.members.shrink_to_fit();
        mc.center.clear();
        mc.center.shrink_to_fit();
      }
      continue;
    }
    fresh.insert(mc.center.data(), static_cast<PointId>(z));
    ++entries;
  }
  centers_ = std::move(fresh);
  center_entries_ = entries;
  dead_center_entries_ = 0;
}

// ---------------------------------------------------------------------------
// Label union-find.
// ---------------------------------------------------------------------------

std::int64_t IncrementalMuDbscan::find_label(std::int64_t l) const {
  while (label_parent_[l] != l) {
    label_parent_[l] = label_parent_[label_parent_[l]];  // path halving
    l = label_parent_[l];
  }
  return l;
}

std::int64_t IncrementalMuDbscan::fresh_label() {
  const auto l = static_cast<std::int64_t>(label_parent_.size());
  label_parent_.push_back(l);
  label_size_.push_back(1);
  return l;
}

std::int64_t IncrementalMuDbscan::union_labels(std::int64_t a, std::int64_t b) {
  a = find_label(a);
  b = find_label(b);
  if (a == b) return a;
  if (label_size_[a] < label_size_[b]) std::swap(a, b);
  label_parent_[b] = a;
  label_size_[a] += label_size_[b];
  ++stats_.graph_edges_repaired;
  return a;
}

// ---------------------------------------------------------------------------
// Border cache.
// ---------------------------------------------------------------------------

void IncrementalMuDbscan::maybe_improve_border(PointId q, PointId core,
                                               double d2) {
  if (border_core_[q] == kInvalidPoint || d2 < border_d2_[q] ||
      (d2 == border_d2_[q] && core < border_core_[q])) {
    border_core_[q] = core;
    border_d2_[q] = d2;
  }
}

void IncrementalMuDbscan::recompute_border(PointId q, std::size_t* touched) {
  border_core_[q] = kInvalidPoint;
  border_d2_[q] = kInf;
  std::vector<std::pair<PointId, double>> nbrs;
  collect_neighbors(ptr(q), q, nbrs, touched);
  for (const auto& [c, d2] : nbrs)
    if (is_core_[c]) maybe_improve_border(q, c, d2);
}

// ---------------------------------------------------------------------------
// Insert.
// ---------------------------------------------------------------------------

void IncrementalMuDbscan::promote_core(
    PointId x, const std::vector<std::pair<PointId, double>>* known_nbrs,
    std::size_t* touched) {
  if (is_core_[x]) return;
  is_core_[x] = 1;
  ++core_count_;
  std::vector<std::pair<PointId, double>> local;
  if (!known_nbrs) {
    collect_neighbors(ptr(x), x, local, touched);
    known_nbrs = &local;
  }
  // Link the new core into the cluster graph: union the clusters of every
  // core neighbor (they all become one — x witnesses the connection).
  std::int64_t root = -1;
  for (const auto& [q, d2] : *known_nbrs) {
    if (!is_core_[q]) continue;
    const std::int64_t r = find_label(core_label_[q]);
    if (root < 0)
      root = r;
    else if (r != root)
      root = union_labels(root, r);
  }
  if (root < 0) {
    root = fresh_label();
  } else {
    ++label_size_[root];
    ++stats_.graph_edges_repaired;  // x attached to an existing cluster
  }
  core_label_[x] = root;
  border_core_[x] = kInvalidPoint;  // cores carry no border attachment
  border_d2_[x] = kInf;
  // x may now be the (d2, id)-minimal core for nearby non-core points.
  for (const auto& [q, d2] : *known_nbrs)
    if (!is_core_[q]) maybe_improve_border(q, x, d2);
}

PointId IncrementalMuDbscan::insert(std::span<const double> pt) {
  if (pt.size() != dim_)
    throw std::invalid_argument("IncrementalMuDbscan::insert: wrong dimension");

  if (total_ % kChunkPoints == 0)
    chunks_.push_back(std::make_unique<double[]>(kChunkPoints * dim_));
  const PointId p = static_cast<PointId>(total_++);
  std::memcpy(const_cast<double*>(ptr(p)), pt.data(), dim_ * sizeof(double));
  alive_.push_back(1);
  nbr_count_.push_back(1);  // self
  is_core_.push_back(0);
  mc_of_.push_back(kInvalidMc);
  core_label_.push_back(-1);
  border_core_.push_back(kInvalidPoint);
  border_d2_.push_back(kInf);
  stamp_.push_back(0);
  ++alive_count_;
  ++stats_.inserts;
  const std::uint64_t edges0 = stats_.graph_edges_repaired;

  std::size_t touched = 0;
  std::vector<std::pair<PointId, double>> nbrs;
  collect_neighbors(ptr(p), p, nbrs, &touched);

  // Exact count maintenance (never falls back): insertion only raises
  // counts, so the only status changes are promotions inside N(p) ∪ {p}.
  std::vector<PointId> promoted;
  nbr_count_[p] = static_cast<std::uint32_t>(nbrs.size()) + 1;
  for (const auto& [q, d2] : nbrs) {
    ++nbr_count_[q];
    if (!is_core_[q] && nbr_count_[q] >= params_.min_pts) promoted.push_back(q);
  }
  if (nbr_count_[p] >= params_.min_pts) promoted.push_back(p);

  assign_to_mc(p, ptr(p));

  bool fell_back = false;
  const std::size_t cap = cfg_.max_touched_mcs_per_update;
  if (cap != 0 && touched + promoted.size() > cap) {
    // Local repair would exceed the blast-radius cap (each promotion costs
    // one more neighborhood scan): keep the exact flags, relabel globally.
    for (PointId x : promoted) {
      if (is_core_[x]) continue;
      is_core_[x] = 1;
      ++core_count_;
    }
    rebuild_labels_global();
    fell_back = true;
  } else {
    // p's border attachment against the already-existing cores; newly
    // promoted cores improve it below (p is one of their neighbors).
    for (const auto& [q, d2] : nbrs)
      if (is_core_[q]) maybe_improve_border(p, q, d2);
    for (PointId x : promoted)
      promote_core(x, x == p ? &nbrs : nullptr, &touched);
  }

  finish_update(touched, stats_.graph_edges_repaired - edges0, fell_back);
  return p;
}

// ---------------------------------------------------------------------------
// Erase.
// ---------------------------------------------------------------------------

bool IncrementalMuDbscan::erase(PointId id) {
  if (id >= total_ || !alive_[id]) return false;
  ++stats_.deletes;
  const std::uint64_t edges0 = stats_.graph_edges_repaired;

  std::size_t touched = 0;
  std::vector<std::pair<PointId, double>> nx;
  collect_neighbors(ptr(id), id, nx, &touched);
  const bool was_core = is_core_[id] != 0;

  alive_[id] = 0;
  --alive_count_;
  if (was_core) {
    is_core_[id] = 0;
    --core_count_;
  }
  border_core_[id] = kInvalidPoint;
  border_d2_[id] = kInf;
  {
    Mc& mc = mcs_[mc_of_[id]];
    --mc.alive_members;
    if (mc.alive_members == 0)
      maybe_rebuild_centers();
    else if (mc.members.size() > 16 &&
             mc.alive_members * 2 < mc.members.size())
      compact_members(mc);
  }

  // Exact count maintenance: deletion only lowers counts, so the only status
  // changes are demotions inside N(x).
  std::vector<PointId> demoted;
  for (const auto& [q, d2] : nx) {
    --nbr_count_[q];
    if (is_core_[q] && nbr_count_[q] < params_.min_pts) {
      is_core_[q] = 0;
      --core_count_;
      demoted.push_back(q);
    }
  }

  // Failed set F: the nodes whose incident cluster-graph edges vanished.
  std::vector<PointId> failed;
  if (was_core) failed.push_back(id);
  failed.insert(failed.end(), demoted.begin(), demoted.end());
  if (failed.empty()) {
    // Core set unchanged — no edge can have disappeared, no border cache
    // entry can have died (caches point at cores only).
    finish_update(touched, stats_.graph_edges_repaired - edges0, false);
    return true;
  }

  // Neighborhoods of the failed nodes (flattened): seeds for the split
  // re-check and the candidates for border re-attachment. x's own list was
  // collected pre-erasure; every entry in it is still alive.
  std::vector<std::pair<PointId, double>> fn_flat;
  std::vector<std::size_t> fn_off{0};
  for (PointId f : failed) {
    if (f == id)
      fn_flat.insert(fn_flat.end(), nx.begin(), nx.end());
    else
      collect_neighbors(ptr(f), f, fn_flat, &touched);
    fn_off.push_back(fn_flat.size());
  }

  const std::size_t cap = cfg_.max_touched_mcs_per_update;
  bool fell_back = false;
  if (cap != 0 && touched > cap) {
    rebuild_labels_global();
    fell_back = true;
  } else {
    repair_after_failures(failed, fn_flat, fn_off, &touched);
    if (cap != 0 && touched > cap) {
      // The scoped BFS blew past the cap mid-flight (repair_after_failures
      // stops enqueuing work once over budget; any partial relabeling is
      // overwritten here). Predictable-cost exact relabel instead.
      rebuild_labels_global();
      fell_back = true;
    } else {
      // Demoted cores become borders (or noise): their neighborhoods are in
      // hand, and every core within eps of them is in there.
      for (std::size_t i = 0; i < failed.size(); ++i) {
        const PointId f = failed[i];
        if (f == id) continue;
        border_core_[f] = kInvalidPoint;
        border_d2_[f] = kInf;
        for (std::size_t k = fn_off[i]; k < fn_off[i + 1]; ++k)
          if (is_core_[fn_flat[k].first])
            maybe_improve_border(f, fn_flat[k].first, fn_flat[k].second);
      }
      // Borders whose cached nearest core died or was demoted: they are
      // within eps of that core, so they appear in its neighbor list.
      const std::uint32_t gen = ++stamp_gen_;
      for (const auto& [q, d2] : fn_flat) {
        if (!alive_[q] || is_core_[q] || stamp_[q] == gen) continue;
        stamp_[q] = gen;
        const PointId bc = border_core_[q];
        if (bc != kInvalidPoint && (!alive_[bc] || !is_core_[bc]))
          recompute_border(q, &touched);
      }
    }
  }

  finish_update(touched, stats_.graph_edges_repaired - edges0, fell_back);
  return true;
}

PointId IncrementalMuDbscan::erase_equal(std::span<const double> pt) {
  if (pt.size() != dim_)
    throw std::invalid_argument(
        "IncrementalMuDbscan::erase_equal: wrong dimension");
  const std::size_t bytes = dim_ * sizeof(double);
  for (PointId id = 0; id < total_; ++id) {
    if (!alive_[id]) continue;
    if (std::memcmp(ptr(id), pt.data(), bytes) == 0) {
      erase(id);
      return id;
    }
  }
  return kInvalidPoint;
}

void IncrementalMuDbscan::repair_after_failures(
    const std::vector<PointId>& failed,
    const std::vector<std::pair<PointId, double>>& failed_nbrs_flat,
    const std::vector<std::size_t>& failed_nbrs_off, std::size_t* touched) {
  // Group the failed nodes by their old cluster and collect each affected
  // cluster's seeds: the surviving cores adjacent to a failure. Every
  // surviving component of the cluster contains a seed (header proof), so a
  // BFS over the seeds enumerates the split exactly — and can stop the
  // moment one traversal has covered every seed (no split).
  std::vector<std::int64_t> roots;
  std::vector<std::vector<PointId>> seeds;
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const std::int64_t r = find_label(core_label_[failed[i]]);
    std::size_t gi = 0;
    while (gi < roots.size() && roots[gi] != r) ++gi;
    if (gi == roots.size()) {
      roots.push_back(r);
      seeds.emplace_back();
    }
    for (std::size_t k = failed_nbrs_off[i]; k < failed_nbrs_off[i + 1]; ++k) {
      const PointId q = failed_nbrs_flat[k].first;
      if (is_core_[q]) seeds[gi].push_back(q);
    }
  }

  const std::size_t cap = cfg_.max_touched_mcs_per_update;
  std::vector<std::pair<PointId, double>> nbrs;
  for (std::size_t gi = 0; gi < roots.size(); ++gi) {
    std::vector<PointId>& S = seeds[gi];
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
    if (S.empty()) continue;  // the whole cluster lost its cores

    const std::uint32_t gen_seed = ++stamp_gen_;
    for (PointId s : S) stamp_[s] = gen_seed;
    const std::uint32_t gen_vis = ++stamp_gen_;
    std::size_t seeds_left = S.size();
    std::vector<std::vector<PointId>> comps;
    bool no_split = false;

    for (PointId s : S) {
      if (stamp_[s] == gen_vis) continue;
      comps.emplace_back();
      std::vector<PointId>& comp = comps.back();
      --seeds_left;  // s is a seed by construction
      stamp_[s] = gen_vis;
      comp.push_back(s);
      for (std::size_t qi = 0; qi < comp.size(); ++qi) {
        if (comps.size() == 1 && seeds_left == 0) {
          no_split = true;  // every seed in one component
          break;
        }
        if (cap != 0 && *touched > cap) return;  // caller falls back
        nbrs.clear();
        collect_neighbors(ptr(comp[qi]), comp[qi], nbrs, touched);
        for (const auto& [q, d2] : nbrs) {
          if (!is_core_[q] || stamp_[q] == gen_vis) continue;
          if (stamp_[q] == gen_seed) --seeds_left;
          stamp_[q] = gen_vis;
          comp.push_back(q);
        }
      }
      if (no_split || seeds_left == 0) break;
    }
    if (no_split || comps.size() <= 1) continue;

    // Real split: the largest surviving component keeps the old label, the
    // others get fresh ones. Borders follow via their nearest-core cache.
    std::size_t keep = 0;
    for (std::size_t k = 1; k < comps.size(); ++k)
      if (comps[k].size() > comps[keep].size()) keep = k;
    for (std::size_t k = 0; k < comps.size(); ++k) {
      if (k == keep) continue;
      const std::int64_t nl = fresh_label();
      label_size_[nl] = static_cast<std::int64_t>(comps[k].size());
      for (PointId m : comps[k]) core_label_[m] = nl;
      stats_.graph_edges_repaired += comps[k].size();
    }
  }
}

// ---------------------------------------------------------------------------
// Fallback: global relabel from maintained flags (no count recomputation).
// ---------------------------------------------------------------------------

void IncrementalMuDbscan::rebuild_labels_global() {
  label_parent_.clear();
  label_size_.clear();
  for (PointId id = 0; id < total_; ++id) {
    if (!alive_[id]) continue;
    if (!is_core_[id]) {
      border_core_[id] = kInvalidPoint;
      border_d2_[id] = kInf;
    }
  }
  const std::uint32_t gen = ++stamp_gen_;
  std::vector<PointId> queue;
  std::vector<std::pair<PointId, double>> nbrs;
  for (PointId id = 0; id < total_; ++id) {
    if (!alive_[id] || !is_core_[id] || stamp_[id] == gen) continue;
    const std::int64_t l = fresh_label();
    queue.clear();
    queue.push_back(id);
    stamp_[id] = gen;
    while (!queue.empty()) {
      const PointId c = queue.back();
      queue.pop_back();
      core_label_[c] = l;
      nbrs.clear();
      collect_neighbors(ptr(c), c, nbrs, nullptr);
      for (const auto& [q, d2] : nbrs) {
        if (is_core_[q]) {
          if (stamp_[q] != gen) {
            stamp_[q] = gen;
            queue.push_back(q);
            ++label_size_[l];
          }
        } else {
          maybe_improve_border(q, c, d2);
        }
      }
    }
  }
}

void IncrementalMuDbscan::finish_update(std::size_t touched,
                                        std::uint64_t edges_delta,
                                        bool fell_back) {
  stats_.mcs_touched += touched;
  if (fell_back) ++stats_.full_fallbacks;
  if (cfg_.metrics) {
    cfg_.metrics->add(obs::Counter::kIncMcsTouched, touched);
    if (edges_delta != 0)
      cfg_.metrics->add(obs::Counter::kIncGraphEdgesRepaired, edges_delta);
    if (fell_back) cfg_.metrics->add(obs::Counter::kIncFullFallbacks);
    cfg_.metrics->observe(obs::Hist::kIncBlastRadius, touched);
  }
}

// ---------------------------------------------------------------------------
// Extraction.
// ---------------------------------------------------------------------------

ClusteringResult IncrementalMuDbscan::result() const {
  ClusteringResult out;
  out.label.reserve(alive_count_);
  out.is_core.reserve(alive_count_);
  std::vector<std::int64_t> renum(label_parent_.size(), -1);
  std::int64_t next = 0;
  for (PointId id = 0; id < total_; ++id) {
    if (!alive_[id]) continue;
    std::int64_t lab = kNoise;
    PointId via = kInvalidPoint;
    if (is_core_[id])
      via = id;
    else if (border_core_[id] != kInvalidPoint)
      via = border_core_[id];
    if (via != kInvalidPoint) {
      const std::int64_t root = find_label(core_label_[via]);
      if (renum[root] < 0) renum[root] = next++;
      lab = renum[root];
    }
    out.label.push_back(lab);
    out.is_core.push_back(is_core_[id]);
  }
  return out;
}

Dataset IncrementalMuDbscan::survivors() const {
  Dataset out = Dataset::empty(dim_);
  out.reserve(alive_count_);
  for (PointId id = 0; id < total_; ++id)
    if (alive_[id]) out.push_back({ptr(id), dim_});
  return out;
}

// ---------------------------------------------------------------------------
// Invariant audit (tests only — O(n^2)).
// ---------------------------------------------------------------------------

void IncrementalMuDbscan::check_invariants() const {
  // Counts and core flags against a brute-force recount.
  for (PointId i = 0; i < total_; ++i) {
    if (!alive_[i]) continue;
    std::uint32_t cnt = 0;
    for (PointId j = 0; j < total_; ++j)
      if (alive_[j] && sq_dist(ptr(i), ptr(j), dim_) < eps2_) ++cnt;
    if (cnt != nbr_count_[i])
      throw std::logic_error("incremental: nbr_count drift");
    if ((cnt >= params_.min_pts) != (is_core_[i] != 0))
      throw std::logic_error("incremental: core flag drift");
    if (!is_core_[i] && border_core_[i] != kInvalidPoint) {
      const PointId bc = border_core_[i];
      if (!alive_[bc] || !is_core_[bc])
        throw std::logic_error("incremental: border cache points at non-core");
      // Must be the (d2, id)-minimal core strictly within eps.
      for (PointId j = 0; j < total_; ++j) {
        if (!alive_[j] || !is_core_[j]) continue;
        const double d2 = sq_dist(ptr(i), ptr(j), dim_);
        if (d2 >= eps2_) continue;
        if (d2 < border_d2_[i] || (d2 == border_d2_[i] && j < bc))
          throw std::logic_error("incremental: border cache not minimal");
      }
    }
  }
  // Micro-cluster structure.
  std::size_t alive_sum = 0;
  std::size_t live = 0;
  for (std::size_t z = 0; z < mcs_.size(); ++z) {
    const Mc& mc = mcs_[z];
    std::size_t alive_here = 0;
    for (PointId m : mc.members) {
      if (!alive_[m]) continue;
      ++alive_here;
      if (mc_of_[m] != static_cast<McId>(z))
        throw std::logic_error("incremental: mc_of mismatch");
      if (sq_dist(mc.center.data(), ptr(m), dim_) >= eps2_)
        throw std::logic_error("incremental: member outside its MC");
    }
    if (alive_here != mc.alive_members)
      throw std::logic_error("incremental: alive_members drift");
    alive_sum += alive_here;
    if (alive_here > 0) ++live;
  }
  if (alive_sum != alive_count_ || live != live_mcs_)
    throw std::logic_error("incremental: MC population drift");
  // Label partition == connected components of the core graph.
  std::vector<std::int64_t> comp(total_, -1);
  std::int64_t ncomp = 0;
  for (PointId i = 0; i < total_; ++i) {
    if (!alive_[i] || !is_core_[i] || comp[i] >= 0) continue;
    std::vector<PointId> queue{i};
    comp[i] = ncomp;
    while (!queue.empty()) {
      const PointId c = queue.back();
      queue.pop_back();
      for (PointId j = 0; j < total_; ++j) {
        if (!alive_[j] || !is_core_[j] || comp[j] >= 0) continue;
        if (sq_dist(ptr(c), ptr(j), dim_) < eps2_) {
          comp[j] = ncomp;
          queue.push_back(j);
        }
      }
    }
    ++ncomp;
  }
  std::vector<std::int64_t> comp_to_root(static_cast<std::size_t>(ncomp), -1);
  std::vector<std::int64_t> seen_roots;
  for (PointId i = 0; i < total_; ++i) {
    if (!alive_[i] || !is_core_[i]) continue;
    const std::int64_t root = find_label(core_label_[i]);
    std::int64_t& slot = comp_to_root[comp[i]];
    if (slot < 0) {
      for (std::int64_t r : seen_roots)
        if (r == root)
          throw std::logic_error("incremental: one label spans two components");
      seen_roots.push_back(root);
      slot = root;
    } else if (slot != root) {
      throw std::logic_error("incremental: component carries two labels");
    }
  }
}

}  // namespace udb
