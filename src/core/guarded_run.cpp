#include "core/guarded_run.hpp"

#include <chrono>

#include "baselines/sampled_dbscan.hpp"
#include "core/mudbscan_engine.hpp"
#include "obs/log.hpp"

namespace udb {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StatusOr<GuardedRunReport> run_guarded(const Dataset& ds,
                                       const DbscanParams& params,
                                       const GuardedRunOptions& opts,
                                       RunGuard* external_guard) {
  if (!(params.eps > 0.0))
    return InvalidArgumentError("run_guarded: eps must be > 0");
  if (params.min_pts < 1)
    return InvalidArgumentError("run_guarded: min_pts must be >= 1");
  if (opts.ranks < 1)
    return InvalidArgumentError("run_guarded: ranks must be >= 1");
  if (opts.on_budget == OnBudget::kDegrade &&
      (!(opts.degrade_rho > 0.0) || opts.degrade_rho > 1.0))
    return InvalidArgumentError("run_guarded: degrade_rho must be in (0, 1]");

  RunGuard local_guard;
  RunGuard* guard = external_guard ? external_guard : &local_guard;
  guard->arm(opts.limits);

  const auto t0 = std::chrono::steady_clock::now();
  GuardedRunReport rep;

  // The dataset is the run's baseline allocation: charge it first so a budget
  // smaller than the input fails immediately with a clear message instead of
  // deep inside the tree build.
  ScopedCharge ds_charge;

  // Run-level registry: every engine this run creates (one for ranks == 1,
  // one per rank otherwise) merges into it on destruction, and the guard
  // feeds it the checkpoint-gap histogram. Detached from the guard before any
  // return — the registry is a local, the external guard may not be.
  obs::MetricsRegistry run_metrics;
  struct MetricsUnset {
    RunGuard* g;
    ~MetricsUnset() { g->set_metrics(nullptr); }
  } metrics_unset{guard};
  guard->set_metrics(&run_metrics);

  MuDbscanConfig mu = opts.mu;
  mu.guard = guard;
  mu.metrics = &run_metrics;
  mu.deadline_seconds = 0.0;  // the shared guard carries the limits
  mu.mem_budget_bytes = 0;
  mu.on_budget = OnBudget::kFail;  // engines always fail; we degrade here

  Status failure;
  try {
    ds_charge.acquire_throw(guard, vector_bytes(ds.raw()), "dataset");
    if (opts.ranks > 1) {
      rep.result = mudbscan_d(ds, params, opts.ranks, &rep.dist_stats, mu);
    } else {
      // Drive the engine directly (not the mu_dbscan wrapper) so the report
      // can also harvest the pool's per-worker stats. Scoped: the engine's
      // destructor merges its shards into run_metrics.
      MuDbscanEngine engine(ds, params, mu);
      engine.run_all();
      rep.result = engine.extract_result();
      rep.stats = engine.stats;
      rep.workers = engine.worker_stats();
    }
    rep.metrics = run_metrics.snapshot();
    rep.mem_peak_bytes = guard->bytes_peak();
    rep.guard_checkpoints = guard->checkpoints_passed();
    rep.seconds = seconds_since(t0);
    return rep;
  } catch (...) {
    failure = status_from_current_exception();
  }
  // The exact engine has fully unwound here: every ScopedCharge it held is
  // released and its heap memory freed, so the fallback starts from the
  // dataset charge alone.

  const bool limit_trip = failure.code() == StatusCode::kDeadlineExceeded ||
                          failure.code() == StatusCode::kResourceExhausted;
  if (opts.on_budget != OnBudget::kDegrade || !limit_trip) {
    rep.mem_peak_bytes = guard->bytes_peak();  // unused, but keep peak honest
    return failure;
  }

  // Degrade: drop the limits (keep the cancel token — Ctrl-C still works),
  // rerun approximately, and flag the result.
  obs::LogLine(obs::LogLevel::kWarn, "guarded_run", "degrading")
      .kv("reason", failure.message())
      .kv("rho", opts.degrade_rho)
      .kv("elapsed_s", seconds_since(t0));
  guard->enter_degraded_mode();
  try {
    SampledDbscanStats sstats;
    rep.result = sampled_dbscan(ds, params, opts.degrade_rho,
                                opts.degrade_seed, &sstats, guard);
    rep.approximate = true;
    rep.sample_rho = opts.degrade_rho;
    rep.sample_size = sstats.sample_size;
    rep.degrade_reason = failure;
    rep.metrics = run_metrics.snapshot();  // counts from the abandoned run
    rep.mem_peak_bytes = guard->bytes_peak();
    rep.guard_checkpoints = guard->checkpoints_passed();
    rep.seconds = seconds_since(t0);
    return rep;
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace udb
