// Parameter selection via the sorted k-dist graph — the heuristic from the
// original DBSCAN paper (Ester et al. 1996, Section 4.2): plot every point's
// distance to its k-th nearest neighbor in descending order; the "valley"
// (knee) of that curve is a good eps for MinPts = k+1. Built on the R-tree's
// kNN query; exposed through the udbscan CLI (--suggest-eps).

#pragma once

#include <cstddef>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

// Distance of every point to its k-th nearest *other* point (k >= 1),
// sorted descending — the k-dist graph. O(n log n) via the R-tree.
[[nodiscard]] std::vector<double> kdist_graph(const Dataset& ds,
                                              std::size_t k);

// A simple knee estimate of the sorted k-dist curve: the point of maximum
// distance to the chord between the curve's endpoints (the "kneedle"
// construction). Returns the k-dist value at the knee — a reasonable eps
// suggestion for MinPts = k+1.
[[nodiscard]] double suggest_eps(const Dataset& ds, std::size_t k);

}  // namespace udb
