#include "core/kdist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "index/rtree.hpp"

namespace udb {

std::vector<double> kdist_graph(const Dataset& ds, std::size_t k) {
  if (k == 0) throw std::invalid_argument("kdist_graph: k must be >= 1");
  const std::size_t n = ds.size();
  std::vector<double> out;
  out.reserve(n);
  if (n == 0) return out;

  std::vector<std::pair<const double*, PointId>> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    items.emplace_back(ds.ptr(static_cast<PointId>(i)),
                       static_cast<PointId>(i));
  const RTree tree = RTree::bulk_load_str(ds.dim(), std::move(items));

  std::vector<std::pair<PointId, double>> knn;
  for (std::size_t i = 0; i < n; ++i) {
    // k+1 because the query point itself is its own nearest neighbor.
    tree.query_knn(ds.point(static_cast<PointId>(i)), k + 1, knn);
    out.push_back(knn.size() > k ? std::sqrt(knn[k].second)
                                 : std::sqrt(knn.back().second));
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

double suggest_eps(const Dataset& ds, std::size_t k) {
  const std::vector<double> curve = kdist_graph(ds, k);
  if (curve.empty()) return 0.0;
  if (curve.size() < 3) return curve.back();

  // Kneedle: maximize the distance from the curve to the straight line
  // between its first and last points.
  const double n1 = static_cast<double>(curve.size() - 1);
  const double y0 = curve.front();
  const double y1 = curve.back();
  std::size_t best = 0;
  double best_gap = -1.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double t = static_cast<double>(i) / n1;
    const double chord = y0 + (y1 - y0) * t;
    const double gap = chord - curve[i];  // curve is convex-ish below chord
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return curve[best];
}

}  // namespace udb
