#include "core/streaming.hpp"

#include <cstring>
#include <stdexcept>

#include "common/distance.hpp"

namespace udb {

StreamingMuDbscan::StreamingMuDbscan(std::size_t dim,
                                     const DbscanParams& params,
                                     MuDbscanConfig cfg)
    : dim_(dim), params_(params), cfg_(cfg), centers_(dim) {
  if (dim_ == 0)
    throw std::invalid_argument("StreamingMuDbscan: dim must be > 0");
  if (!(params_.eps > 0.0))
    throw std::invalid_argument("StreamingMuDbscan: eps must be > 0");
  if (params_.min_pts == 0)
    throw std::invalid_argument("StreamingMuDbscan: MinPts must be >= 1");
}

const double* StreamingMuDbscan::stored_ptr(PointId id) const noexcept {
  return chunks_[id / kChunkPoints].get() +
         static_cast<std::size_t>(id % kChunkPoints) * dim_;
}

PointId StreamingMuDbscan::insert(std::span<const double> pt) {
  if (pt.size() != dim_)
    throw std::invalid_argument("StreamingMuDbscan::insert: wrong dimension");

  // Store coordinates (chunked: existing pointers never move).
  if (count_ % kChunkPoints == 0)
    chunks_.push_back(std::make_unique<double[]>(kChunkPoints * dim_));
  const PointId id = static_cast<PointId>(count_++);
  double* dst = const_cast<double*>(stored_ptr(id));
  std::memcpy(dst, pt.data(), dim_ * sizeof(double));

  // Online MC assignment: first centre strictly within eps wins; otherwise
  // this point founds a new MC. (The batch 2*eps deferral needs a second
  // pass over deferred points, which a stream cannot replay — documented
  // deviation; exactness does not depend on the MC partition.)
  const PointId hit = centers_.first_within({dst, dim_}, params_.eps);
  if (hit != kInvalidPoint) {
    const std::size_t mc = hit;
    ++mc_sizes_[mc];
    const double d2 =
        sq_dist(dst, stored_ptr(mc_center_[mc]), dim_);
    const double half = params_.eps / 2.0;
    if (d2 < half * half) ++mc_ic_[mc];
  } else {
    const auto mc = static_cast<PointId>(mc_sizes_.size());
    mc_sizes_.push_back(1);
    mc_ic_.push_back(0);
    mc_center_.push_back(id);
    centers_.insert(dst, mc);
  }

  cached_.reset();  // offline cache invalidated
  return id;
}

void StreamingMuDbscan::insert_batch(const Dataset& ds) {
  if (ds.dim() != dim_)
    throw std::invalid_argument("StreamingMuDbscan: batch dimension mismatch");
  for (std::size_t i = 0; i < ds.size(); ++i)
    (void)insert(ds.point(static_cast<PointId>(i)));
}

std::size_t StreamingMuDbscan::guaranteed_core_lower_bound() const noexcept {
  std::size_t cores = 0;
  for (std::size_t mc = 0; mc < mc_sizes_.size(); ++mc) {
    if (mc_ic_[mc] >= params_.min_pts) {
      // Dense MC: every inner-circle member is core, and so is the centre.
      cores += mc_ic_[mc] + 1;
    } else if (mc_sizes_[mc] >= params_.min_pts) {
      cores += 1;  // core MC: the centre is core
    }
  }
  return cores;
}

void StreamingMuDbscan::materialize() {
  if (!materialized_) materialized_.emplace(Dataset::empty(dim_));
  if (materialized_count_ == count_) return;
  // Append only the points ingested since the previous materialization,
  // chunk-contiguous run by run (the prefix already in the buffer is
  // immutable: chunks are append-only and insertion order never changes).
  materialized_->reserve(count_);
  std::size_t i = materialized_count_;
  while (i < count_) {
    const std::size_t run_end =
        std::min(count_, (i / kChunkPoints + 1) * kChunkPoints);
    materialized_->append_raw(
        {stored_ptr(static_cast<PointId>(i)), (run_end - i) * dim_});
    i = run_end;
  }
  materialized_count_ = count_;
}

const Dataset& StreamingMuDbscan::dataset() {
  materialize();
  return *materialized_;
}

const ClusteringResult& StreamingMuDbscan::result() {
  if (!cached_) {
    // Bring the contiguous view up to date and run the exact batch algorithm
    // (offline phase). Reusing the online MC partition here would be
    // possible but buys little: phases 2-4 dominate.
    materialize();
    cached_.emplace(mu_dbscan(*materialized_, params_, &stats_, cfg_));
  }
  return *cached_;
}

}  // namespace udb
