#include "core/streaming.hpp"

namespace udb {

namespace {

IncrementalMuDbscan::Config resolve_inc_cfg(const MuDbscanConfig& cfg,
                                            IncrementalMuDbscan::Config inc) {
  if (!inc.metrics) inc.metrics = cfg.metrics;
  return inc;
}

}  // namespace

StreamingMuDbscan::StreamingMuDbscan(std::size_t dim,
                                     const DbscanParams& params,
                                     MuDbscanConfig cfg,
                                     IncrementalMuDbscan::Config inc_cfg)
    : cfg_(cfg), engine_(dim, params, resolve_inc_cfg(cfg, inc_cfg)) {}

PointId StreamingMuDbscan::insert(std::span<const double> pt) {
  cached_.reset();
  return engine_.insert(pt);
}

void StreamingMuDbscan::insert_batch(const Dataset& ds) {
  if (ds.dim() != engine_.dim())
    throw std::invalid_argument("StreamingMuDbscan: batch dimension mismatch");
  cached_.reset();  // batch-granular: one invalidation for the whole batch
  for (std::size_t i = 0; i < ds.size(); ++i)
    (void)engine_.insert(ds.point(static_cast<PointId>(i)));
}

bool StreamingMuDbscan::erase(PointId id) {
  if (!engine_.erase(id)) return false;
  cached_.reset();
  return true;
}

PointId StreamingMuDbscan::erase_equal(std::span<const double> pt) {
  const PointId id = engine_.erase_equal(pt);
  if (id != kInvalidPoint) cached_.reset();
  return id;
}

const Dataset& StreamingMuDbscan::dataset() {
  const std::uint64_t deletes = engine_.stats().deletes;
  if (!materialized_ || deletes != materialized_deletes_) {
    materialized_.emplace(engine_.survivors());
  } else if (materialized_total_ < engine_.total()) {
    // Insert-only growth since the last materialization: the cached prefix
    // is untouched (ids are append-only and none were erased), so only the
    // new ids need appending.
    materialized_->reserve(engine_.size());
    for (std::size_t id = materialized_total_; id < engine_.total(); ++id)
      materialized_->push_back(engine_.point(static_cast<PointId>(id)));
  }
  materialized_total_ = engine_.total();
  materialized_deletes_ = deletes;
  return *materialized_;
}

const ClusteringResult& StreamingMuDbscan::result() {
  if (!cached_) cached_.emplace(engine_.result());
  return *cached_;
}

}  // namespace udb
