// µDBSCAN (Section IV, Algorithms 2-8): exact DBSCAN that identifies a large
// fraction of core points *without* performing their eps-neighborhood
// queries, via micro-cluster classification (DMC/CMC) and dynamic wndq-core
// promotion, then repairs the few missing cluster connections in two cheap
// post-processing passes. Produces exactly the classical DBSCAN clustering
// (Theorem 1): same core set, same core partition, same noise set.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/runguard.hpp"
#include "core/murtree.hpp"
#include "metrics/clustering.hpp"

namespace udb {

namespace obs {
class MetricsRegistry;
class Tracer;
}

struct MuDbscanConfig {
  // Ablation switches (all true = the paper's algorithm).
  bool two_eps_rule = true;        // Algorithm 3's MC-count limiting rule
  bool dynamic_promotion = true;   // Algorithm 6 lines 18-21
  bool mbr_filtration = true;      // reachable-MC MBR filter in FIND-NBHD
  bool bulk_aux = true;            // STR-pack AuxR-trees (engineering knob)

  // Real shared-memory parallelism (paper Section VII). 1 = the sequential
  // engine, byte-for-byte the previous behavior. >1 runs the AuxR-tree
  // builds, inner-circle/reachable computation, the Algorithm 6 query loop,
  // and both post-processing passes on a thread pool of this size, with a
  // lock-free union-find; the clustering stays exactly equal to sequential
  // DBSCAN at every thread count (see docs/PARALLEL.md).
  //
  // Stats determinism at num_threads > 1: num_mcs, dmc/cmc/smc, avoided_dmc
  // and avoided_cmc are identical at every thread count (Algorithm 4 writes
  // are thread-exclusive and a promotion can never overwrite a DMC/CMC tag —
  // it claims the tag byte with a compare-exchange from 0). Only
  // queries_performed and avoided_promotion may differ run-to-run, trading
  // exactly one-for-one: a point promoted concurrently with its own
  // Algorithm 6 turn either sees the tag in time (counted avoided) or runs a
  // redundant query (counted performed). The redundant query is harmless —
  // it returns the same neighborhood and re-derives the same unions — and
  // the ledger identity queries_performed + avoided_total == n holds at
  // every thread count. Downstream of that same race, wndq_core_points,
  // post_core_distance_evals and the provisional-noise/border-repair counts
  // also vary with promotion timing; the clustering never does.
  unsigned num_threads = 1;

  // ---- observability (docs/OBSERVABILITY.md) -----------------------------
  // Optional parent metrics registry (not owned). The engine always collects
  // into its own per-thread sharded registry; on destruction it merges its
  // snapshot into `metrics` when one is supplied (thread-safe: concurrent
  // rank engines may merge into one run-level registry).
  obs::MetricsRegistry* metrics = nullptr;
  // Optional tracer (not owned): the engine emits phase.* spans and the
  // µR-tree build.* spans when set; null costs one branch per span site.
  obs::Tracer* tracer = nullptr;

  // ---- run-guard limits (docs/ROBUSTNESS.md) -----------------------------
  // When a limit is set (or `guard` is supplied) the engine runs cooperative
  // checkpoints in every phase; a violation aborts the run with a
  // StatusError carrying DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED / CANCELLED
  // and all memory is reclaimed on unwind. `on_budget` is the policy the
  // guarded entry point (core/guarded_run.*) applies on exhaustion; the
  // engine itself always fails cleanly and leaves degradation to the caller.
  double deadline_seconds = 0.0;        // <= 0: none
  std::size_t mem_budget_bytes = 0;     // 0: none
  OnBudget on_budget = OnBudget::kFail;
  // External guard (not owned). Supplying one shares a deadline/budget/token
  // across engines (each distributed rank's engine shares the run's guard);
  // when null and a limit above is set, the engine owns a private guard.
  RunGuard* guard = nullptr;
};

// Thin scalar view over the engine's metrics registry (the counters below
// are filled from the same per-thread shards the obs run report snapshots;
// see Counter in obs/metrics.hpp for the full catalog).
struct MuDbscanStats {
  std::size_t num_mcs = 0;
  std::size_t dmc = 0, cmc = 0, smc = 0;
  std::uint64_t queries_performed = 0;
  // Query-avoidance ledger by reason (Algorithm 6 skip site):
  // queries_performed + avoided_dmc + avoided_cmc + avoided_promotion == n.
  std::uint64_t avoided_dmc = 0;        // tagged by a dense MC (Lemma 1)
  std::uint64_t avoided_cmc = 0;        // tagged as a core-MC centre (Lemma 2)
  std::uint64_t avoided_promotion = 0;  // tagged by dynamic wndq promotion
  std::uint64_t wndq_core_points = 0;  // cores identified without a query
  std::uint64_t post_core_distance_evals = 0;

  // Phase wall times, matching the paper's Table III split:
  double t_tree = 0.0;     // µR-tree construction (incl. MC formation)
  double t_reach = 0.0;    // finding reachable MCs
  double t_cluster = 0.0;  // MC processing + PROCESS-REM-POINTS
  double t_post = 0.0;     // POST-PROCESSING-CORE + -NOISE

  [[nodiscard]] double total() const noexcept {
    return t_tree + t_reach + t_cluster + t_post;
  }
  [[nodiscard]] double query_save_fraction(std::size_t n) const noexcept {
    return n == 0 ? 0.0
                  : 1.0 - static_cast<double>(queries_performed) /
                              static_cast<double>(n);
  }
};

[[nodiscard]] ClusteringResult mu_dbscan(const Dataset& ds,
                                         const DbscanParams& params,
                                         MuDbscanStats* stats = nullptr,
                                         const MuDbscanConfig& cfg = {});

}  // namespace udb
