// µDBSCAN (Section IV, Algorithms 2-8): exact DBSCAN that identifies a large
// fraction of core points *without* performing their eps-neighborhood
// queries, via micro-cluster classification (DMC/CMC) and dynamic wndq-core
// promotion, then repairs the few missing cluster connections in two cheap
// post-processing passes. Produces exactly the classical DBSCAN clustering
// (Theorem 1): same core set, same core partition, same noise set.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/runguard.hpp"
#include "core/murtree.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct MuDbscanConfig {
  // Ablation switches (all true = the paper's algorithm).
  bool two_eps_rule = true;        // Algorithm 3's MC-count limiting rule
  bool dynamic_promotion = true;   // Algorithm 6 lines 18-21
  bool mbr_filtration = true;      // reachable-MC MBR filter in FIND-NBHD
  bool bulk_aux = true;            // STR-pack AuxR-trees (engineering knob)

  // Real shared-memory parallelism (paper Section VII). 1 = the sequential
  // engine, byte-for-byte the previous behavior. >1 runs the AuxR-tree
  // builds, inner-circle/reachable computation, the Algorithm 6 query loop,
  // and both post-processing passes on a thread pool of this size, with a
  // lock-free union-find; the clustering stays exactly equal to sequential
  // DBSCAN at every thread count (see docs/PARALLEL.md). Stats that count
  // saved queries can differ run-to-run when > 1 (promotion races are benign).
  unsigned num_threads = 1;

  // ---- run-guard limits (docs/ROBUSTNESS.md) -----------------------------
  // When a limit is set (or `guard` is supplied) the engine runs cooperative
  // checkpoints in every phase; a violation aborts the run with a
  // StatusError carrying DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED / CANCELLED
  // and all memory is reclaimed on unwind. `on_budget` is the policy the
  // guarded entry point (core/guarded_run.*) applies on exhaustion; the
  // engine itself always fails cleanly and leaves degradation to the caller.
  double deadline_seconds = 0.0;        // <= 0: none
  std::size_t mem_budget_bytes = 0;     // 0: none
  OnBudget on_budget = OnBudget::kFail;
  // External guard (not owned). Supplying one shares a deadline/budget/token
  // across engines (each distributed rank's engine shares the run's guard);
  // when null and a limit above is set, the engine owns a private guard.
  RunGuard* guard = nullptr;
};

struct MuDbscanStats {
  std::size_t num_mcs = 0;
  std::size_t dmc = 0, cmc = 0, smc = 0;
  std::uint64_t queries_performed = 0;
  std::uint64_t wndq_core_points = 0;  // cores identified without a query
  std::uint64_t post_core_distance_evals = 0;

  // Phase wall times, matching the paper's Table III split:
  double t_tree = 0.0;     // µR-tree construction (incl. MC formation)
  double t_reach = 0.0;    // finding reachable MCs
  double t_cluster = 0.0;  // MC processing + PROCESS-REM-POINTS
  double t_post = 0.0;     // POST-PROCESSING-CORE + -NOISE

  [[nodiscard]] double total() const noexcept {
    return t_tree + t_reach + t_cluster + t_post;
  }
  [[nodiscard]] double query_save_fraction(std::size_t n) const noexcept {
    return n == 0 ? 0.0
                  : 1.0 - static_cast<double>(queries_performed) /
                              static_cast<double>(n);
  }
};

[[nodiscard]] ClusteringResult mu_dbscan(const Dataset& ds,
                                         const DbscanParams& params,
                                         MuDbscanStats* stats = nullptr,
                                         const MuDbscanConfig& cfg = {});

}  // namespace udb
