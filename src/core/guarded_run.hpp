// Guarded entry point: the one place where a DBSCAN run becomes a governable
// unit of work. run_guarded() arms a RunGuard with the caller's deadline /
// memory budget, charges the dataset against it, runs the exact engine
// (shared-memory µDBSCAN or the distributed µDBSCAN-D driver), and converts
// every failure into a Status the caller can branch on — nothing escapes as a
// crash.
//
// Degradation contract (docs/ROBUSTNESS.md): when the exact run trips its
// deadline or budget and the policy is OnBudget::kDegrade, the guard enters
// degraded mode (limits dropped, cancel token kept) and the run falls back to
// sampled_dbscan on the same data. The report is then explicitly flagged
// `approximate` with the achieved sample rate — a degraded result is never
// silently passed off as exact. User cancellation (SIGINT) never degrades:
// the user asked for the run to stop, not for a worse answer.

#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"
#include "common/parallel.hpp"
#include "common/runguard.hpp"
#include "common/status.hpp"
#include "core/mudbscan.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

struct GuardedRunOptions {
  RunLimits limits;                     // deadline / memory budget (0 = none)
  OnBudget on_budget = OnBudget::kFail; // policy when a limit trips
  double degrade_rho = 0.25;            // sampling rate of the fallback
  std::uint64_t degrade_seed = 1;       // fallback sampling seed
  MuDbscanConfig mu;    // engine knobs (num_threads, ablations); guard and
                        // limit fields are overwritten by run_guarded
  int ranks = 1;        // > 1: run the distributed driver on this many ranks
};

struct GuardedRunReport {
  ClusteringResult result;

  // Degradation outcome. `approximate` is false for an exact result; when
  // true, `degrade_reason` records why the exact run was abandoned and
  // sample_rho / sample_size record what the fallback actually used.
  bool approximate = false;
  double sample_rho = 1.0;
  std::size_t sample_size = 0;
  Status degrade_reason;

  MuDbscanStats stats;        // populated for shared-memory runs
  MuDbscanDStats dist_stats;  // populated for ranks > 1

  // Run-level metrics registry snapshot: for ranks == 1 the engine's shards,
  // for ranks > 1 every rank engine merged together. On a degraded run this
  // still holds whatever the abandoned exact run counted.
  obs::MetricsSnapshot metrics;
  // ThreadPool per-worker busy/jobs (tid order); empty when num_threads == 1
  // or ranks > 1 (rank engines are single-threaded within their rank).
  std::vector<ThreadPool::WorkerStats> workers;

  std::size_t mem_peak_bytes = 0;       // high-water mark of guarded charges
  std::uint64_t guard_checkpoints = 0;  // cooperative checkpoints passed
  double seconds = 0.0;                 // wall time of the whole guarded run
};

// Runs DBSCAN under the guard. On success returns the report; on failure the
// Status carries DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED / CANCELLED /
// INVALID_ARGUMENT / INTERNAL with a message. All engine memory is reclaimed
// before this returns (RAII on the unwind path — the acceptance test runs it
// under ASan/LSan).
//
// `external_guard` (optional) lets the caller own the guard — the CLI does
// this so its SIGINT handler can trip the cancel token. It is re-armed with
// opts.limits on entry.
[[nodiscard]] StatusOr<GuardedRunReport> run_guarded(
    const Dataset& ds, const DbscanParams& params,
    const GuardedRunOptions& opts = {}, RunGuard* external_guard = nullptr);

}  // namespace udb
