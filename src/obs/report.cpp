#include "obs/report.hpp"

#include <cmath>
#include <cstdio>

#include "common/simd.hpp"
#include "common/vfs.hpp"

namespace udb::obs {

void JsonWriter::value(double v) {
  sep();
  if (!std::isfinite(v)) {
    out_.append("null");  // JSON has no inf/nan
  } else {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_.append(buf);
  }
  mark_written();
}

void JsonWriter::value_u64(std::uint64_t v) {
  sep();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_.append(buf);
  mark_written();
}

void JsonWriter::value_i64(std::int64_t v) {
  sep();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_.append(buf);
  mark_written();
}

void JsonWriter::append_escaped(const char* s) {
  out_.push_back('"');
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      case '\t': out_.append("\\t"); break;
      case '\r': out_.append("\\r"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

namespace {

void write_hist(JsonWriter& w, const HistSnapshot& h) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("mean", h.mean());
  w.kv("min", h.count == 0 ? std::uint64_t{0} : h.min);
  w.kv("max", h.max);
  // Sparse log2 buckets: [bucket_floor, count] pairs, zero buckets omitted.
  w.key("buckets");
  w.begin_array();
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    w.begin_array();
    w.value(b == 0 ? std::uint64_t{0} : std::uint64_t{1} << (b - 1));
    w.value(h.buckets[b]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_metrics_snapshot(JsonWriter& w, const MetricsSnapshot& snap,
                            std::uint64_t points) {
  // Query-avoidance ledger: the paper's central claim as data. For the
  // sequential muDBSCAN engine performed + avoided_total == points exactly.
  const std::uint64_t performed = snap.counter(Counter::kQueriesPerformed);
  const std::uint64_t avoided =
      snap.counter(Counter::kQueriesAvoidedDmc) +
      snap.counter(Counter::kQueriesAvoidedCmc) +
      snap.counter(Counter::kQueriesAvoidedPromotion) +
      snap.counter(Counter::kQueriesAvoidedDenseCell) +
      snap.counter(Counter::kQueriesAvoidedDenseGroup);
  w.key("query_ledger");
  w.begin_object();
  w.kv("points", points);
  w.kv("queries_performed", performed);
  w.key("avoided");
  w.begin_object();
  w.kv("dmc", snap.counter(Counter::kQueriesAvoidedDmc));
  w.kv("cmc", snap.counter(Counter::kQueriesAvoidedCmc));
  w.kv("wndq_promotion", snap.counter(Counter::kQueriesAvoidedPromotion));
  w.kv("grid_dense_cell", snap.counter(Counter::kQueriesAvoidedDenseCell));
  w.kv("gdbscan_dense_group", snap.counter(Counter::kQueriesAvoidedDenseGroup));
  w.end_object();
  w.kv("avoided_total", avoided);
  w.kv("query_savings",
       points == 0 ? 0.0
                   : static_cast<double>(avoided) / static_cast<double>(points));
  w.end_object();

  w.key("murtree");
  w.begin_object();
  w.kv("num_mcs", snap.counter(Counter::kMcDense) +
                      snap.counter(Counter::kMcCore) +
                      snap.counter(Counter::kMcSparse));
  w.kv("dmc", snap.counter(Counter::kMcDense));
  w.kv("cmc", snap.counter(Counter::kMcCore));
  w.kv("smc", snap.counter(Counter::kMcSparse));
  w.kv("deferred_points", snap.counter(Counter::kMcDeferredPoints));
  w.kv("wndq_core_points", snap.counter(Counter::kWndqCorePoints));
  w.kv("aux_trees_searched", snap.counter(Counter::kAuxTreesSearched));
  w.kv("rtree_node_visits", snap.counter(Counter::kRtreeNodeVisits));
  w.kv("rtree_distance_evals", snap.counter(Counter::kRtreeDistanceEvals));
  w.kv("kernel_blocks", snap.counter(Counter::kKernelBlocks));
  w.kv("kernel_tail_points", snap.counter(Counter::kKernelTailPoints));
  w.end_object();

  w.key("unionfind");
  w.begin_object();
  w.kv("union_calls", snap.counter(Counter::kUnionCalls));
  w.kv("post_core_distance_evals",
       snap.counter(Counter::kPostCoreDistanceEvals));
  w.end_object();

  // Online insert/erase maintenance (core/incremental.*): how local the
  // updates stayed. mcs_touched is summed blast radius; the per-update
  // distribution is the inc_blast_radius histogram below.
  w.key("incremental");
  w.begin_object();
  w.kv("mcs_touched", snap.counter(Counter::kIncMcsTouched));
  w.kv("graph_edges_repaired",
       snap.counter(Counter::kIncGraphEdgesRepaired));
  w.kv("full_fallbacks", snap.counter(Counter::kIncFullFallbacks));
  w.end_object();

  // Flat catalog: every counter by name (units in docs/OBSERVABILITY.md).
  w.key("counters");
  w.begin_object();
  for (std::size_t i = 0; i < kNumCounters; ++i)
    w.kv(counter_name(static_cast<Counter>(i)), snap.counters[i]);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (std::size_t i = 0; i < kNumHists; ++i) {
    w.key(hist_name(static_cast<Hist>(i)));
    write_hist(w, snap.hists[i]);
  }
  w.end_object();
}

std::string run_report_json(const RunReportInputs& in) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", std::uint64_t{2});

  w.key("run");
  w.begin_object();
  w.kv("tool", in.tool);
  w.kv("algo", in.algo);
  w.kv("n", in.n);
  w.kv("dim", in.dim);
  w.kv("eps", in.eps);
  w.kv("min_pts", static_cast<std::uint64_t>(in.min_pts));
  w.kv("threads", in.threads);
  w.kv("ranks", in.ranks);
  w.kv("seconds", in.seconds);
  w.kv("approximate", in.approximate);
  w.kv("simd_target", simd_target_name(active_simd_target()));
  w.end_object();

  w.key("phases");
  w.begin_object();
  for (const auto& [name, secs] : in.phases) w.kv(name.c_str(), secs);
  w.end_object();

  write_metrics_snapshot(w, in.metrics, static_cast<std::uint64_t>(in.n));

  w.key("threadpool");
  w.begin_object();
  w.key("workers");
  w.begin_array();
  for (std::size_t i = 0; i < in.workers.size(); ++i) {
    w.begin_object();
    w.kv("tid", i);
    w.kv("busy_seconds", in.workers[i].busy_seconds);
    w.kv("jobs", in.workers[i].jobs);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (in.has_guard) {
    w.key("runguard");
    w.begin_object();
    w.kv("mem_peak_bytes", in.mem_peak_bytes);
    w.kv("mem_budget_bytes", in.mem_budget_bytes);
    w.kv("deadline_seconds", in.deadline_seconds);
    w.kv("checkpoints", in.guard_checkpoints);
    w.end_object();
  }

  if (!in.rank_stats.empty()) {
    w.key("ranks");
    w.begin_array();
    for (const RunReportInputs::Rank& r : in.rank_stats) {
      w.begin_object();
      w.kv("rank", r.rank);
      w.kv("n_local", r.n_local);
      w.kv("n_halo", r.n_halo);
      w.key("phase_seconds");
      w.begin_object();
      w.kv("partition", r.t_partition);
      w.kv("halo", r.t_halo);
      w.kv("local", r.t_local);
      w.kv("merge", r.t_merge);
      w.kv("scatter", r.t_scatter);
      w.end_object();
      w.kv("queries_performed", r.queries_performed);
      w.key("comm");
      w.begin_object();
      w.kv("msgs_sent", r.msgs_sent);
      w.kv("bytes_sent", r.bytes_sent);
      w.kv("msgs_recv", r.msgs_recv);
      w.kv("bytes_recv", r.bytes_recv);
      w.kv("retries", r.retries);
      w.kv("timeouts", r.timeouts);
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  return w.str() + "\n";
}

Status write_run_report(const RunReportInputs& in, const std::string& path) {
  // Through the VFS: open/write/close errors (including injected ENOSPC)
  // all surface as a Status — a metrics file is either complete or reported
  // failed, never silently truncated.
  return vfs::write_text_file(path, run_report_json(in));
}

}  // namespace udb::obs
