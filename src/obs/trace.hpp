// Span-based tracer exporting Chrome trace_event JSON (docs/OBSERVABILITY.md).
//
// Usage:
//   obs::Tracer tracer;                 // or nullptr to disable
//   { obs::Span s(&tracer, "cluster"); ...work... }   // RAII: ends on scope exit
//   tracer.write_chrome_trace("trace.json");          // after workers joined
//
// Each completed span records steady-clock start/duration, the per-thread CPU
// time consumed inside the span, a small sequential thread id, and the
// thread's trace pid (the simulated MPI rank for distributed runs — see
// set_trace_pid). Events are buffered per thread in TLS-cached buffers so
// recording a span never takes a lock; export merges the buffers.
//
// A Span constructed with a null tracer is fully inert: no clock reads, no
// allocation, nothing (verified by tests/obs/test_obs.cpp).
//
// write_chrome_trace emits the Chrome trace_event "X" (complete-event) array
// format, loadable in chrome://tracing and https://ui.perfetto.dev. Call it
// only after the threads that recorded spans have quiesced (joined or
// barriered) — the exporter takes the registration lock but does not stop
// concurrent writers mid-span.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/timer.hpp"

namespace udb::obs {

// Trace "process" id for the calling thread; distributed drivers set it to
// the simulated rank so Perfetto groups tracks per rank. Returns the previous
// value so scoped callers can restore it. Default 0.
int set_trace_pid(int pid);
int trace_pid();

struct TraceEvent {
  const char* name;        // static string (span names are literals)
  std::uint64_t start_ns;  // steady clock, relative to tracer construction
  std::uint64_t dur_ns;
  double cpu_seconds;      // thread CPU time spent inside the span
  std::uint32_t tid;       // sequential tracer-local thread id
  std::int32_t pid;        // trace pid at record time (simulated rank)
  std::uint64_t trace_id;  // request trace id (0 = untraced span)
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Snapshot of all completed spans, ordered by (registration order, record
  // order within a thread). Call after writers quiesce for a complete view.
  std::vector<TraceEvent> events() const;

  // Writes the Chrome trace_event JSON array format. Returns a Status so CLI
  // callers can surface I/O failures.
  Status write_chrome_trace(const std::string& path) const;

  std::uint64_t now_ns() const;  // steady ns since tracer construction

 private:
  friend class Span;

  struct alignas(64) ThreadBuf {
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuf& buf();
  ThreadBuf& register_buf();

  void record(const char* name, std::uint64_t start_ns, double cpu0,
              std::uint64_t trace_id) {
    const std::uint64_t end = now_ns();
    ThreadBuf& b = buf();
    b.events.push_back(TraceEvent{name, start_ns, end - start_ns,
                                  ThreadCpuTimer::now() - cpu0, b.tid,
                                  trace_pid(), trace_id});
  }

  const std::uint64_t id_;  // process-unique, never reused (TLS cache key)
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex reg_mu_;
  std::deque<ThreadBuf> bufs_;
};

// RAII span. Null tracer => every member is a no-op (and the constructor
// touches no clock), so instrumentation sites cost one branch when tracing
// is off.
class Span {
 public:
  // `trace_id` tags the recorded event with a request trace id so events
  // from different processes (client, replicas) can be correlated in a
  // merged Chrome trace. 0 keeps the span untraced (batch-engine spans).
  Span(Tracer* tracer, const char* name, std::uint64_t trace_id = 0)
      : tracer_(tracer), name_(name), trace_id_(trace_id) {
    if (tracer_ != nullptr) {
      start_ns_ = tracer_->now_ns();
      cpu0_ = ThreadCpuTimer::now();
    }
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early (idempotent).
  void end() {
    if (tracer_ == nullptr) return;
    tracer_->record(name_, start_ns_, cpu0_, trace_id_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t trace_id_;
  std::uint64_t start_ns_ = 0;
  double cpu0_ = 0.0;
};

}  // namespace udb::obs
