#include "obs/metrics.hpp"

namespace udb::obs {

namespace {

// Process-unique registry ids. Never reused, so a thread-local cache entry
// left behind by a destroyed registry can never false-hit a live one.
std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kQueriesPerformed: return "queries_performed";
    case Counter::kQueriesAvoidedDmc: return "queries_avoided_dmc";
    case Counter::kQueriesAvoidedCmc: return "queries_avoided_cmc";
    case Counter::kQueriesAvoidedPromotion: return "queries_avoided_promotion";
    case Counter::kQueriesAvoidedDenseCell: return "queries_avoided_dense_cell";
    case Counter::kQueriesAvoidedDenseGroup:
      return "queries_avoided_dense_group";
    case Counter::kMcDense: return "mc_dense";
    case Counter::kMcCore: return "mc_core";
    case Counter::kMcSparse: return "mc_sparse";
    case Counter::kMcDeferredPoints: return "mc_deferred_points";
    case Counter::kWndqCorePoints: return "wndq_core_points";
    case Counter::kPostCoreDistanceEvals: return "post_core_distance_evals";
    case Counter::kNoiseProvisional: return "noise_provisional";
    case Counter::kBorderRepaired: return "border_repaired";
    case Counter::kUnionCalls: return "union_calls";
    case Counter::kAuxTreesSearched: return "aux_trees_searched";
    case Counter::kRtreeNodeVisits: return "rtree_node_visits";
    case Counter::kRtreeDistanceEvals: return "rtree_distance_evals";
    case Counter::kKernelBlocks: return "kernel_blocks";
    case Counter::kKernelTailPoints: return "kernel_tail_points";
    case Counter::kServeRequests: return "serve_requests";
    case Counter::kServeErrors: return "serve_errors";
    case Counter::kServeDeadlineExceeded: return "serve_deadline_exceeded";
    case Counter::kServeClassifyPoints: return "serve_classify_points";
    case Counter::kServeClassifyPerformed: return "serve_classify_performed";
    case Counter::kServeClassifyAvoidedExact:
      return "serve_classify_avoided_exact";
    case Counter::kServeNeighborQueries: return "serve_neighbor_queries";
    case Counter::kServePointInfoLookups: return "serve_point_info_lookups";
    case Counter::kServeModelRefreshes: return "serve_model_refreshes";
    case Counter::kServeCorruptFrames: return "serve_corrupt_frames";
    case Counter::kServeLegacyClients: return "serve_legacy_clients";
    case Counter::kServeShedLoad: return "serve_shed_load";
    case Counter::kServeShedConnections: return "serve_shed_connections";
    case Counter::kServeIdleDisconnects: return "serve_idle_disconnects";
    case Counter::kServeAcceptRetries: return "serve_accept_retries";
    case Counter::kServeClientRetries: return "serve_client_retries";
    case Counter::kServeClientFailovers: return "serve_client_failovers";
    case Counter::kServeClientGiveUps: return "serve_client_give_ups";
    case Counter::kIncMcsTouched: return "inc_mcs_touched";
    case Counter::kIncGraphEdgesRepaired: return "inc_graph_edges_repaired";
    case Counter::kIncFullFallbacks: return "inc_full_fallbacks";
    case Counter::kNumCounters: break;
  }
  return "unknown";
}

const char* counter_unit(Counter c) {
  switch (c) {
    case Counter::kQueriesPerformed:
    case Counter::kQueriesAvoidedDmc:
    case Counter::kQueriesAvoidedCmc:
    case Counter::kQueriesAvoidedPromotion:
    case Counter::kQueriesAvoidedDenseCell:
    case Counter::kQueriesAvoidedDenseGroup:
      return "queries";
    case Counter::kMcDense:
    case Counter::kMcCore:
    case Counter::kMcSparse:
      return "micro-clusters";
    case Counter::kMcDeferredPoints:
    case Counter::kWndqCorePoints:
    case Counter::kNoiseProvisional:
    case Counter::kBorderRepaired:
      return "points";
    case Counter::kPostCoreDistanceEvals:
    case Counter::kRtreeDistanceEvals:
      return "distance-evals";
    case Counter::kUnionCalls: return "calls";
    case Counter::kAuxTreesSearched: return "descents";
    case Counter::kRtreeNodeVisits: return "nodes";
    case Counter::kKernelBlocks: return "blocks";
    case Counter::kKernelTailPoints: return "points";
    case Counter::kServeRequests:
    case Counter::kServeErrors:
    case Counter::kServeDeadlineExceeded:
      return "requests";
    case Counter::kServeClassifyPoints:
    case Counter::kServeClassifyPerformed:
    case Counter::kServeClassifyAvoidedExact:
    case Counter::kServePointInfoLookups:
      return "points";
    case Counter::kServeNeighborQueries: return "queries";
    case Counter::kServeModelRefreshes: return "swaps";
    case Counter::kServeCorruptFrames: return "frames";
    case Counter::kServeLegacyClients:
    case Counter::kServeShedConnections:
    case Counter::kServeIdleDisconnects:
      return "connections";
    case Counter::kServeShedLoad:
    case Counter::kServeClientGiveUps:
      return "requests";
    case Counter::kServeAcceptRetries:
    case Counter::kServeClientRetries:
      return "retries";
    case Counter::kServeClientFailovers: return "failovers";
    case Counter::kIncMcsTouched: return "micro-clusters";
    case Counter::kIncGraphEdgesRepaired: return "repairs";
    case Counter::kIncFullFallbacks: return "updates";
    case Counter::kNumCounters: break;
  }
  return "";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kNeighborCount: return "neighbor_count";
    case Hist::kReachableLen: return "reachable_list_len";
    case Hist::kMcSize: return "mc_size";
    case Hist::kCheckpointGapUs: return "checkpoint_gap_us";
    case Hist::kServeRequestUs: return "serve_request_us";
    case Hist::kServeBatchSize: return "serve_batch_size";
    case Hist::kServeIdleWaitUs: return "serve_idle_wait_us";
    case Hist::kServeAcceptBackoffUs: return "serve_accept_backoff_us";
    case Hist::kIncBlastRadius: return "inc_blast_radius";
    case Hist::kNumHists: break;
  }
  return "unknown";
}

const char* hist_unit(Hist h) {
  switch (h) {
    case Hist::kNeighborCount: return "points";
    case Hist::kReachableLen: return "micro-clusters";
    case Hist::kMcSize: return "points";
    case Hist::kCheckpointGapUs: return "microseconds";
    case Hist::kServeRequestUs: return "microseconds";
    case Hist::kServeBatchSize: return "points";
    case Hist::kServeIdleWaitUs: return "microseconds";
    case Hist::kServeAcceptBackoffUs: return "microseconds";
    case Hist::kIncBlastRadius: return "micro-clusters";
    case Hist::kNumHists: break;
  }
  return "";
}

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::Shard& MetricsRegistry::shard() {
  // One-entry cache: engine phases run one registry at a time per thread, so
  // a single slot hits nearly always. Keyed by the never-reused registry id.
  struct Cache {
    std::uint64_t id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.id == id_) return *cache.shard;
  Shard& s = register_shard();
  cache.id = id_;
  cache.shard = &s;
  return s;
}

MetricsRegistry::Shard& MetricsRegistry::register_shard() {
  std::lock_guard<std::mutex> lk(reg_mu_);
  return shards_.emplace_back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lk(reg_mu_);
  // Registration order is deterministic given a deterministic thread
  // schedule; more importantly every merge below is commutative and
  // associative, so the totals are order-independent regardless.
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kNumCounters; ++i)
      out.counters[i] += s.counters[i].load(std::memory_order_acquire);
    for (std::size_t i = 0; i < kNumHists; ++i) {
      const HistShard& hs = s.hists[i];
      HistSnapshot& ho = out.hists[i];
      ho.count += hs.count.load(std::memory_order_acquire);
      ho.sum += hs.sum.load(std::memory_order_acquire);
      const std::uint64_t mn = hs.min.load(std::memory_order_acquire);
      const std::uint64_t mx = hs.max.load(std::memory_order_acquire);
      if (mn < ho.min) ho.min = mn;
      if (mx > ho.max) ho.max = mx;
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        ho.buckets[b] += hs.buckets[b].load(std::memory_order_acquire);
    }
  }
  return out;
}

void MetricsRegistry::merge_from(const MetricsSnapshot& snap) {
  Shard& s = shard();
  for (std::size_t i = 0; i < kNumCounters; ++i)
    if (snap.counters[i] != 0) cell_add(s.counters[i], snap.counters[i]);
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const HistSnapshot& hi = snap.hists[i];
    if (hi.count == 0) continue;
    HistShard& hs = s.hists[i];
    cell_add(hs.count, hi.count);
    cell_add(hs.sum, hi.sum);
    if (hi.min < hs.min.load(std::memory_order_relaxed))
      hs.min.store(hi.min, std::memory_order_relaxed);
    if (hi.max > hs.max.load(std::memory_order_relaxed))
      hs.max.store(hi.max, std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      if (hi.buckets[b] != 0) cell_add(hs.buckets[b], hi.buckets[b]);
  }
}

}  // namespace udb::obs
