// Sliding-window metric aggregation for live telemetry (docs/OBSERVABILITY.md,
// "Live telemetry"). A SlidingWindow is a lock-free ring of time-bucketed
// shards: each thread that records into it owns a cache-line padded shard
// (the same single-writer-cell discipline as MetricsRegistry), and each shard
// is a ring of 64 one-second buckets holding a small counter set plus a
// fine-grained log-linear latency histogram. snapshot(now, W) merges the
// buckets covering the last W seconds across all shards into a plain
// WindowStats, from which rolling qps and interpolated p50/p90/p99/p999 fall
// out — the numbers the TELEMETRY RPC serves.
//
// Time is an explicit parameter (microseconds on the caller's monotonic
// clock), never read from a wall clock here, so bucket rotation is exactly
// testable: tests/obs/test_window.cpp drives boundaries deterministically.
// The serving layer passes microseconds since server start (steady clock).
//
// Concurrency contract: recording threads touch only their own shard's
// atomics (relaxed load + release store, no RMW); snapshot() takes only the
// registration mutex and reads cells with acquire loads, so it is safe (and
// TSan-clean) while writers are active. One benign inaccuracy is accepted:
// a snapshot racing a bucket that is being recycled for a new second may see
// that bucket partially cleared. The error is bounded by one bucket (<= 1
// second of one thread's traffic) and self-heals on the next snapshot —
// exact totals are the cumulative MetricsRegistry's job, not the window's.
//
// Latency resolution: plain log2 buckets (the MetricsRegistry histograms)
// quantize to a factor of 2 — useless for "p99 within 20%" claims. Here each
// power-of-two octave is split into 8 linear sub-buckets, so with linear
// interpolation inside a bucket the quantization error is bounded by 1/8 of
// the value (12.5%), well inside the 20% acceptance band. Values at or above
// 2^26 us (~67 s) clamp into the last bucket; a request that slow is an
// outage, not a latency distribution.

#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace udb::obs {

// Per-window counters. kRequests drives qps; the rest turn into rolling
// shed/retry/failover rates. Server-side windows use the first three, the
// retrying client's window uses requests/errors/retries/failovers.
enum class WinCounter : std::uint32_t {
  kRequests = 0,
  kErrors,
  kShed,
  kRetries,
  kFailovers,
  kNumWinCounters,
};

inline constexpr std::size_t kNumWinCounters =
    static_cast<std::size_t>(WinCounter::kNumWinCounters);

// Ring capacity in one-second buckets; windows up to 63 s are exact. Power of
// two so the slot index is a mask, not a division.
inline constexpr std::size_t kWindowRingSeconds = 64;

// Log-linear histogram geometry: 8 linear sub-buckets per power-of-two
// octave, octaves 0..25 (values 1 .. 2^26-1), plus cell 0 for value 0 and a
// clamp cell at the top. 209 cells * 8 B keeps a bucket under 2 KB.
inline constexpr std::size_t kWindowSubBuckets = 8;
inline constexpr std::size_t kWindowMaxOctave = 26;
inline constexpr std::size_t kWindowHistCells =
    1 + kWindowSubBuckets * kWindowMaxOctave;

inline constexpr std::size_t window_bucket(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t k = static_cast<std::size_t>(std::bit_width(v)) - 1;
  if (k >= kWindowMaxOctave) return kWindowHistCells - 1;
  // Linear position of v inside [2^k, 2^(k+1)), scaled to 8 sub-buckets.
  const std::uint64_t sub = ((v - (std::uint64_t{1} << k)) << 3) >> k;
  return 1 + k * kWindowSubBuckets + static_cast<std::size_t>(sub);
}

// Inclusive lower bound of a cell; cell 0 is the exact value 0. The formula
// extends one past the last cell so window_cell_hi stays closed-form.
inline double window_cell_lo(std::size_t cell) {
  if (cell == 0) return 0.0;
  const std::size_t k = (cell - 1) / kWindowSubBuckets;
  const std::size_t sub = (cell - 1) % kWindowSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kWindowSubBuckets,
                    static_cast<int>(k));
}

inline double window_cell_hi(std::size_t cell) {
  return cell == 0 ? 1.0 : window_cell_lo(cell + 1);
}

// Plain merged view of one window. Percentiles interpolate linearly inside
// the covering cell, which makes them monotone in q by construction and
// clamps them to the observed max.
struct WindowStats {
  double window_seconds = 0.0;
  std::uint64_t counters[kNumWinCounters] = {};
  std::uint64_t count = 0;   // latency observations in the window
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t cells[kWindowHistCells] = {};

  std::uint64_t counter(WinCounter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  double rate(WinCounter c) const {
    return window_seconds <= 0.0
               ? 0.0
               : static_cast<double>(counter(c)) / window_seconds;
  }
  double qps() const { return rate(WinCounter::kRequests); }
  double mean_us() const {
    return count == 0
               ? 0.0
               : static_cast<double>(sum_us) / static_cast<double>(count);
  }
  // q in [0, 1]. 0 with no observations.
  double percentile(double q) const;
};

class SlidingWindow {
 public:
  SlidingWindow();
  SlidingWindow(const SlidingWindow&) = delete;
  SlidingWindow& operator=(const SlidingWindow&) = delete;

  // Hot path: callable from any thread, each writes only its own shard.
  // `now_us` is the caller's monotonic clock in microseconds.
  void add(WinCounter c, std::uint64_t now_us, std::uint64_t n = 1) {
    Bucket& b = bucket(shard(), now_us / 1'000'000);
    cell_add(b.counters[static_cast<std::size_t>(c)], n);
  }

  void record_latency(std::uint64_t now_us, std::uint64_t latency_us) {
    Bucket& b = bucket(shard(), now_us / 1'000'000);
    cell_add(b.cells[window_bucket(latency_us)], 1);
    cell_add(b.count, 1);
    cell_add(b.sum, latency_us);
    if (latency_us > b.max.load(std::memory_order_relaxed))
      b.max.store(latency_us, std::memory_order_relaxed);
  }

  // Merges the buckets stamped within (now - window, now] across all shards.
  // `window_seconds` is clamped to the ring capacity minus one so a bucket
  // about to be recycled is never double-counted.
  WindowStats snapshot(std::uint64_t now_us,
                       std::uint64_t window_seconds) const;

 private:
  struct Bucket {
    // stamp = second index + 1; 0 means empty or mid-recycle (readers skip).
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> counters[kNumWinCounters] = {};
    std::atomic<std::uint64_t> cells[kWindowHistCells] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  struct alignas(64) Shard {
    Bucket buckets[kWindowRingSeconds];
  };

  // Single-writer accumulate, same protocol as MetricsRegistry::cell_add.
  static void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_release);
  }

  // Returns the shard bucket for `sec`, recycling it if it still holds an
  // older second. Only the shard's owning thread calls this.
  Bucket& bucket(Shard& s, std::uint64_t sec);

  Shard& shard();
  Shard& register_shard();  // slow path: takes reg_mu_

  const std::uint64_t id_;  // process-unique, never reused (TLS cache key)
  mutable std::mutex reg_mu_;
  std::deque<Shard> shards_;  // deque: stable addresses across registration
};

}  // namespace udb::obs
