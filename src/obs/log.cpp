#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

namespace udb::obs {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: break;
  }
  return "?????";
}

double process_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

// Force the epoch to initialize at static-init time so the prefix measures
// from (roughly) process start, not from the first log line.
[[maybe_unused]] const double g_epoch_init = process_seconds();

}  // namespace

void set_log_level(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

StatusOr<LogLevel> parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return InvalidArgumentError(
      "log level must be debug|info|warn|error|off (got '" + s + "')");
}

LogLine::LogLine(LogLevel level, const char* component, const char* event)
    : active_(level != LogLevel::kOff && log_enabled(level)) {
  if (!active_) return;
  char head[160];
  std::snprintf(head, sizeof head, "[%10.3fs] %s %s %s", process_seconds(),
                level_tag(level), component, event);
  line_.assign(head);
}

LogLine::~LogLine() {
  if (!active_) return;
  line_.push_back('\n');
  // Single write: concurrent log lines never interleave mid-line.
  std::fputs(line_.c_str(), stderr);
}

void LogLine::append(const char* key, const char* value) {
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  line_.append(value);
}

void LogLine::append_i64(const char* key, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  append(key, buf);
}

LogLine& LogLine::kv(const char* key, double value) {
  if (!active_) return *this;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", value);
  append(key, buf);
  return *this;
}

}  // namespace udb::obs
