#include "obs/window.hpp"

#include <algorithm>

namespace udb::obs {
namespace {

// Process-unique window ids; never reused, so a stale TLS cache entry from a
// destroyed window can never alias a new one.
std::atomic<std::uint64_t> g_next_window_id{1};

}  // namespace

SlidingWindow::SlidingWindow()
    : id_(g_next_window_id.fetch_add(1, std::memory_order_relaxed)) {}

SlidingWindow::Shard& SlidingWindow::shard() {
  // One-entry TLS cache, same scheme as MetricsRegistry: keyed by the
  // process-unique window id so each (thread, window) pair resolves its
  // shard once and then hits the cache on every record.
  struct Cache {
    std::uint64_t id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.id != id_) {
    cache.shard = &register_shard();
    cache.id = id_;
  }
  return *cache.shard;
}

SlidingWindow::Shard& SlidingWindow::register_shard() {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return shards_.emplace_back();
}

SlidingWindow::Bucket& SlidingWindow::bucket(Shard& s, std::uint64_t sec) {
  Bucket& b = s.buckets[sec & (kWindowRingSeconds - 1)];
  const std::uint64_t want = sec + 1;
  if (b.stamp.load(std::memory_order_relaxed) != want) {
    // Recycle: mark mid-reset so concurrent snapshots skip this bucket,
    // clear, then publish the new stamp. Only the owning thread writes here.
    b.stamp.store(0, std::memory_order_release);
    for (auto& c : b.counters) c.store(0, std::memory_order_relaxed);
    for (auto& c : b.cells) c.store(0, std::memory_order_relaxed);
    b.count.store(0, std::memory_order_relaxed);
    b.sum.store(0, std::memory_order_relaxed);
    b.max.store(0, std::memory_order_relaxed);
    b.stamp.store(want, std::memory_order_release);
  }
  return b;
}

WindowStats SlidingWindow::snapshot(std::uint64_t now_us,
                                    std::uint64_t window_seconds) const {
  window_seconds =
      std::clamp<std::uint64_t>(window_seconds, 1, kWindowRingSeconds - 1);
  const std::uint64_t now_sec = now_us / 1'000'000;
  // Buckets stamped in [lo_sec, now_sec] are inside the window. The current
  // (partial) second is included so a snapshot right after traffic sees it.
  const std::uint64_t lo_sec =
      now_sec >= window_seconds - 1 ? now_sec - (window_seconds - 1) : 0;

  WindowStats out;
  out.window_seconds = static_cast<double>(window_seconds);
  std::lock_guard<std::mutex> lock(reg_mu_);
  for (const Shard& s : shards_) {
    for (const Bucket& b : s.buckets) {
      const std::uint64_t stamp = b.stamp.load(std::memory_order_acquire);
      if (stamp == 0) continue;  // empty or mid-recycle
      const std::uint64_t sec = stamp - 1;
      if (sec < lo_sec || sec > now_sec) continue;  // outside the window
      for (std::size_t i = 0; i < kNumWinCounters; ++i)
        out.counters[i] += b.counters[i].load(std::memory_order_acquire);
      for (std::size_t i = 0; i < kWindowHistCells; ++i)
        out.cells[i] += b.cells[i].load(std::memory_order_acquire);
      out.count += b.count.load(std::memory_order_acquire);
      out.sum_us += b.sum.load(std::memory_order_acquire);
      out.max_us =
          std::max(out.max_us, b.max.load(std::memory_order_acquire));
    }
  }
  return out;
}

double WindowStats::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, nearest-rank with interpolation
  // inside the covering cell).
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t cell = 0; cell < kWindowHistCells; ++cell) {
    const std::uint64_t c = cells[cell];
    if (c == 0) continue;
    const double before = static_cast<double>(seen);
    seen += c;
    if (static_cast<double>(seen) >= rank) {
      // Linear interpolation across the cell's value range by the fraction
      // of the cell's population below the rank.
      const double frac =
          c == 0 ? 0.0
                 : std::clamp((rank - before) / static_cast<double>(c), 0.0,
                              1.0);
      const double lo = window_cell_lo(cell);
      const double hi = window_cell_hi(cell);
      const double v = lo + (hi - lo) * frac;
      return std::min(v, static_cast<double>(max_us));
    }
  }
  return static_cast<double>(max_us);
}

}  // namespace udb::obs
