#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>

#include "common/vfs.hpp"

namespace udb::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

thread_local int t_trace_pid = 0;

}  // namespace

int set_trace_pid(int pid) {
  const int prev = t_trace_pid;
  t_trace_pid = pid;
  return prev;
}

int trace_pid() { return t_trace_pid; }

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuf& Tracer::buf() {
  struct Cache {
    std::uint64_t id = 0;
    ThreadBuf* buf = nullptr;
  };
  thread_local Cache cache;
  if (cache.id == id_) return *cache.buf;
  ThreadBuf& b = register_buf();
  cache.id = id_;
  cache.buf = &b;
  return b;
}

Tracer::ThreadBuf& Tracer::register_buf() {
  std::lock_guard<std::mutex> lk(reg_mu_);
  ThreadBuf& b = bufs_.emplace_back();
  b.tid = static_cast<std::uint32_t>(bufs_.size() - 1);
  return b;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (const ThreadBuf& b : bufs_)
    out.insert(out.end(), b.events.begin(), b.events.end());
  return out;
}

Status Tracer::write_chrome_trace(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  // Rendered in memory, then written through the VFS in one call: every I/O
  // error (open, ENOSPC mid-write, close) comes back as a Status instead of
  // a silently truncated trace file.
  std::string doc = "[";
  char line[512];
  bool first = true;
  for (const TraceEvent& e : evs) {
    // Chrome trace_event complete event; ts/dur are microseconds (double).
    // The trace id is emitted as a hex string arg: a u64 does not fit JSON's
    // 2^53 integer range, and a string is what trace viewers search on.
    if (e.trace_id != 0) {
      std::snprintf(
          line, sizeof line,
          "%s\n{\"name\":\"%s\",\"cat\":\"udbscan\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%u,"
          "\"args\":{\"thread_cpu_ms\":%.3f,\"trace_id\":\"0x%llx\"}}",
          first ? "" : ",", e.name, static_cast<double>(e.start_ns) / 1000.0,
          static_cast<double>(e.dur_ns) / 1000.0, e.pid, e.tid,
          e.cpu_seconds * 1000.0,
          static_cast<unsigned long long>(e.trace_id));
    } else {
      std::snprintf(
          line, sizeof line,
          "%s\n{\"name\":\"%s\",\"cat\":\"udbscan\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%u,"
          "\"args\":{\"thread_cpu_ms\":%.3f}}",
          first ? "" : ",", e.name, static_cast<double>(e.start_ns) / 1000.0,
          static_cast<double>(e.dur_ns) / 1000.0, e.pid, e.tid,
          e.cpu_seconds * 1000.0);
    }
    doc += line;
    first = false;
  }
  doc += "\n]\n";
  return vfs::write_text_file(path, doc);
}

}  // namespace udb::obs
