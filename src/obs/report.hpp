// Structured run report: one machine-readable JSON document per run
// (--metrics-out=report.json). Schema documented in docs/OBSERVABILITY.md and
// pinned by tests/obs/test_obs.cpp (golden key set, schema_version bump
// required for breaking changes).

#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace udb::obs {

// Minimal JSON writer: explicit begin/end with automatic comma placement.
// Produces compact one-line-per-call output; not a general serializer, just
// enough for the run report and the bench metrics embeds.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const char* k) {
    comma();
    append_escaped(k);
    out_.push_back(':');
    pending_value_ = true;
  }

  void value(const char* v) {
    sep();
    append_escaped(v);
    mark_written();
  }
  void value(const std::string& v) { value(v.c_str()); }
  void value(bool v) {
    sep();
    out_.append(v ? "true" : "false");
    mark_written();
  }
  void value(double v);
  template <typename Int>
    requires(std::is_integral_v<Int> && !std::is_same_v<Int, bool>)
  void value(Int v) {
    if constexpr (std::is_signed_v<Int>)
      value_i64(static_cast<std::int64_t>(v));
    else
      value_u64(static_cast<std::uint64_t>(v));
  }

  template <typename T>
  void kv(const char* k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void value_u64(std::uint64_t v);
  void value_i64(std::int64_t v);
  void open(char c) {
    sep();
    out_.push_back(c);
    need_comma_.push_back(false);
  }
  void close(char c) {
    out_.push_back(c);
    need_comma_.pop_back();
    mark_written();
  }
  // Separator before a value/open: consumes a pending key or places a comma.
  void sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    comma();
  }
  void comma() {
    if (!need_comma_.empty() && need_comma_.back()) out_.push_back(',');
  }
  void mark_written() {
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  void append_escaped(const char* s);

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

// Everything the report serializer needs, decoupled from engine/dist types so
// obs/ depends only on common/. Callers (CLI, guarded_run, benches) fill in
// what they have; empty sections are omitted from the JSON.
struct RunReportInputs {
  std::string tool = "udbscan";
  std::string algo;
  std::size_t n = 0;
  std::size_t dim = 0;
  double eps = 0.0;
  std::uint32_t min_pts = 0;
  unsigned threads = 1;
  int ranks = 1;
  double seconds = 0.0;
  bool approximate = false;

  // Phase wall-clock seconds in execution order.
  std::vector<std::pair<std::string, double>> phases;

  MetricsSnapshot metrics;

  struct Worker {
    double busy_seconds = 0.0;
    std::uint64_t jobs = 0;
  };
  std::vector<Worker> workers;  // ThreadPool per-worker totals (tid order)

  bool has_guard = false;
  std::size_t mem_peak_bytes = 0;
  std::size_t mem_budget_bytes = 0;   // 0 = unlimited
  double deadline_seconds = 0.0;      // 0 = none
  std::uint64_t guard_checkpoints = 0;

  struct Rank {
    int rank = 0;
    std::size_t n_local = 0;
    std::size_t n_halo = 0;
    double t_partition = 0.0;
    double t_halo = 0.0;
    double t_local = 0.0;
    double t_merge = 0.0;
    double t_scatter = 0.0;
    std::uint64_t queries_performed = 0;
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
  };
  std::vector<Rank> rank_stats;  // per simulated rank (mudbscan-d only)
};

// Serializes the metrics snapshot as a JSON object value (counters, ledger,
// histograms) into `w`. Shared by the run report and the bench JSON embeds.
// `points` sizes the ledger's query_savings denominator (0 = omit savings).
void write_metrics_snapshot(JsonWriter& w, const MetricsSnapshot& snap,
                            std::uint64_t points);

// Full run report; returns the serialized document.
std::string run_report_json(const RunReportInputs& in);

// Convenience: serialize and write to a file.
Status write_run_report(const RunReportInputs& in, const std::string& path);

}  // namespace udb::obs
