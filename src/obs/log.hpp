// Minimal structured logger: level + component + event + key=value pairs on a
// single stderr line (docs/OBSERVABILITY.md).
//
//   obs::LogLine(obs::LogLevel::kWarn, "runguard", "deadline_exceeded")
//       .kv("elapsed_s", 12.3).kv("deadline_s", 10.0);
//   // stderr: [   12.345s] WARN  runguard deadline_exceeded elapsed_s=12.3
//   //         deadline_s=10
//
// The line is emitted by the LogLine destructor with a single fprintf, so
// concurrent threads never interleave within a line. A LogLine below the
// global threshold allocates nothing and formats nothing (verified by
// tests/obs/test_obs.cpp); the check is one relaxed atomic load.
//
// NOT async-signal-safe — never log from signal handlers (RunGuard's
// request_cancel stays silent for exactly this reason).

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/status.hpp"

namespace udb::obs {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are suppressed. Default kWarn so
// library users only hear about trouble. Thread-safe (relaxed atomic).
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses "debug|info|warn|error|off" (case-sensitive).
StatusOr<LogLevel> parse_log_level(const std::string& s);

inline bool log_enabled(LogLevel level) {
  extern std::atomic<int> g_log_level;
  return static_cast<int>(level) >= g_log_level.load(std::memory_order_relaxed);
}

class LogLine {
 public:
  LogLine(LogLevel level, const char* component, const char* event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& kv(const char* key, const std::string& value) {
    if (active_) append(key, value.c_str());
    return *this;
  }
  LogLine& kv(const char* key, const char* value) {
    if (active_) append(key, value);
    return *this;
  }
  LogLine& kv(const char* key, double value);
  template <typename Int>
    requires std::is_integral_v<Int>
  LogLine& kv(const char* key, Int value) {
    if (active_) append_i64(key, static_cast<long long>(value));
    return *this;
  }

 private:
  void append(const char* key, const char* value);
  void append_i64(const char* key, long long value);

  bool active_;
  std::string line_;
};

}  // namespace udb::obs
