// Metrics registry: counters and log-scale histograms with per-thread sharded
// storage (docs/OBSERVABILITY.md).
//
// Design goals, in order:
//   1. The hot query path (Algorithm 6's per-point skip check) must pay at
//      most a TLS lookup plus one relaxed store per event when metrics are
//      collected, and a single relaxed load when a registry is absent.
//   2. Snapshots must be deterministic: shards are merged in registration
//      order, and every counter is additive, so the merged totals are
//      independent of thread scheduling (the *values* of a few counters still
//      depend on benign promotion races — see src/core/mudbscan.hpp).
//   3. No global singleton. A registry is owned by whoever needs one (engine,
//      guarded run, bench rep) and merged upward explicitly, so concurrent
//      engines (one per simulated rank) never contend on shared cells.
//
// Sharding: each thread that touches a registry gets its own cache-line
// padded Shard. Cells are std::atomic<uint64_t> written single-writer with a
// relaxed load+store pair (not an RMW — the owner is the only writer, readers
// only see the cell at snapshot time), so the fast path is a plain store on
// every mainstream ISA and TSan sees a properly-synchronized access. Shards
// live in a std::deque so registration never relocates existing shards out
// from under their owning threads.
//
// The TLS shard cache is keyed by a process-unique registry id that is never
// reused, so a stale cache entry from a destroyed registry can never alias a
// live one.

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace udb::obs {

// ---------------------------------------------------------------------------
// Catalog. Adding an entry: extend the enum, then counter_name()/counter_unit()
// (or hist_*) in metrics.cpp, then the catalog table in docs/OBSERVABILITY.md.
// ---------------------------------------------------------------------------

enum class Counter : std::uint32_t {
  // Query-avoidance ledger (the paper's central cost model). For the
  // sequential engine these four sum to exactly n; at num_threads > 1 only
  // kQueriesPerformed <-> kQueriesAvoidedPromotion can trade one-for-one.
  kQueriesPerformed = 0,       // epsilon-neighborhood queries actually run
  kQueriesAvoidedDmc,          // skipped: point in a dense micro-cluster
  kQueriesAvoidedCmc,          // skipped: MC centre already proven core
  kQueriesAvoidedPromotion,    // skipped: promoted core during Alg 6/8
  kQueriesAvoidedDenseCell,    // grid_dbscan: point in a dense cell
  kQueriesAvoidedDenseGroup,   // g_dbscan: point in a dense group

  // Micro-cluster classification (Algorithm 4).
  kMcDense,                    // DMC count
  kMcCore,                     // CMC count
  kMcSparse,                   // SMC count
  kMcDeferredPoints,           // points deferred out of undersized MCs
  kWndqCorePoints,             // cores proven Without Neighborhood Density Query
  kPostCoreDistanceEvals,      // Alg 7 candidate distance evaluations

  // Clustering structure maintenance.
  kNoiseProvisional,           // points provisionally marked noise in Alg 6
  kBorderRepaired,             // provisional noise re-attached in Alg 8
  kUnionCalls,                 // union-find unite() invocations

  // muR-tree internals.
  kAuxTreesSearched,           // AuxR-tree descents during neighborhood queries
  kRtreeNodeVisits,            // R-tree nodes popped (level-1 + aux combined)
  kRtreeDistanceEvals,         // leaf point-distance evaluations
  kKernelBlocks,               // leaf SoA blocks handed to the SIMD kernel
  kKernelTailPoints,           // scanned points in a block's scalar tail

  // Serving layer (src/serve/, docs/SERVING.md). The classify ledger mirrors
  // the engine's query-avoidance ledger: every classify answer is produced
  // either by a muR-tree neighborhood search (performed) or by the
  // exact-match fast path (avoided), so at any quiesced snapshot
  //   kServeClassifyPerformed + kServeClassifyAvoidedExact
  //     == kServeClassifyPoints.
  kServeRequests,              // protocol requests handled (all types)
  kServeErrors,                // requests answered with a non-OK status
  kServeDeadlineExceeded,      // requests aborted by the per-request deadline
  kServeClassifyPoints,        // classify answers produced
  kServeClassifyPerformed,     // ... via a muR-tree neighborhood search
  kServeClassifyAvoidedExact,  // ... via the exact-match fast path
  kServeNeighborQueries,       // neighbors() searches run
  kServePointInfoLookups,      // point_info answers produced
  kServeModelRefreshes,        // served-model swaps (refresh())

  // Serving robustness (protocol v2 + overload protection + retrying
  // client; docs/SERVING.md failure-mode matrix).
  kServeCorruptFrames,         // frames refused by the transport (CRC / framing)
  kServeLegacyClients,         // v1 frames answered UNIMPLEMENTED
  kServeShedLoad,              // requests shed RESOURCE_EXHAUSTED (admission)
  kServeShedConnections,       // connections shed at accept (budget full)
  kServeIdleDisconnects,       // connections closed by the idle timeout
  kServeAcceptRetries,         // accept() failures absorbed by backoff
  kServeClientRetries,         // client: attempts beyond the first
  kServeClientFailovers,       // client: endpoint switches on failure
  kServeClientGiveUps,         // client: requests failed after all attempts

  // Incremental maintenance (src/core/incremental.*, docs/INCREMENTAL.md).
  // Every insert/erase runs micro-cluster-accelerated neighborhood scans and
  // a scoped cluster-graph repair; these counters expose the blast radius.
  kIncMcsTouched,              // candidate MCs scanned across update queries
  kIncGraphEdgesRepaired,      // cluster-graph repairs: unions + split relabels
  kIncFullFallbacks,           // updates that exceeded the blast-radius cap

  kNumCounters,
};

enum class Hist : std::uint32_t {
  kNeighborCount = 0,  // |N_eps(p)| per performed query
  kReachableLen,       // reachable-MC list length per micro-cluster
  kMcSize,             // micro-cluster population
  kCheckpointGapUs,    // microseconds between RunGuard cooperative checkpoints
  kServeRequestUs,     // serving: wall microseconds per protocol request
  kServeBatchSize,     // serving: points per classify batch request
  kServeIdleWaitUs,    // serving: idle microseconds before a timeout disconnect
  kServeAcceptBackoffUs,  // serving: microseconds slept per accept() backoff
  kIncBlastRadius,     // micro-clusters touched per incremental update
  kNumHists,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kNumCounters);
inline constexpr std::size_t kNumHists =
    static_cast<std::size_t>(Hist::kNumHists);

// Log2 buckets: bucket 0 holds value 0, bucket b >= 1 holds values with
// bit_width == b, i.e. [2^(b-1), 2^b). 64-bit values need bit_width up to 64.
inline constexpr std::size_t kHistBuckets = 65;

inline constexpr std::size_t hist_bucket(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

const char* counter_name(Counter c);
const char* counter_unit(Counter c);
const char* hist_name(Hist h);
const char* hist_unit(Hist h);

// ---------------------------------------------------------------------------
// Snapshot: plain (non-atomic) merged view, safe to copy and serialize.
// ---------------------------------------------------------------------------

struct HistSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = UINT64_MAX;  // UINT64_MAX when count == 0
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistBuckets] = {};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void merge(const HistSnapshot& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    for (std::size_t b = 0; b < kHistBuckets; ++b) buckets[b] += o.buckets[b];
  }
};

struct MetricsSnapshot {
  std::uint64_t counters[kNumCounters] = {};
  HistSnapshot hists[kNumHists] = {};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistSnapshot& hist(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
  void merge(const MetricsSnapshot& o) {
    for (std::size_t i = 0; i < kNumCounters; ++i) counters[i] += o.counters[i];
    for (std::size_t i = 0; i < kNumHists; ++i) hists[i].merge(o.hists[i]);
  }
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Hot path. Safe from any thread; each thread writes only its own shard.
  void add(Counter c, std::uint64_t n = 1) {
    Shard& s = shard();
    cell_add(s.counters[static_cast<std::size_t>(c)], n);
  }

  void observe(Hist h, std::uint64_t v) {
    Shard& s = shard();
    HistShard& hs = s.hists[static_cast<std::size_t>(h)];
    cell_add(hs.buckets[hist_bucket(v)], 1);
    cell_add(hs.count, 1);
    cell_add(hs.sum, v);
    // min/max cells are also single-writer; relaxed load + store suffices.
    if (v < hs.min.load(std::memory_order_relaxed))
      hs.min.store(v, std::memory_order_relaxed);
    if (v > hs.max.load(std::memory_order_relaxed))
      hs.max.store(v, std::memory_order_relaxed);
  }

  // Merges all shards in registration order (deterministic) into a plain
  // snapshot. Safe to call while writers are active: each cell is read with
  // an acquire load, so the snapshot is a consistent-enough monotone view;
  // for exact totals call it after the writing threads have quiesced (all
  // engine call sites do).
  MetricsSnapshot snapshot() const;

  // Adds a finished snapshot into this registry's shard for the calling
  // thread. Used to merge an engine's registry into a run-level parent
  // (thread-safe: concurrent rank engines may merge at once).
  void merge_from(const MetricsSnapshot& snap);

 private:
  struct HistShard {
    std::atomic<std::uint64_t> buckets[kHistBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{UINT64_MAX};
    std::atomic<std::uint64_t> max{0};
  };
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counters[kNumCounters] = {};
    HistShard hists[kNumHists] = {};
  };

  // Single-writer accumulate: not an RMW because only the owning thread
  // writes this cell. Readers (snapshot) pair with acquire loads.
  static void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_release);
  }

  Shard& shard();
  Shard& register_shard();  // slow path: takes reg_mu_

  const std::uint64_t id_;  // process-unique, never reused
  mutable std::mutex reg_mu_;
  std::deque<Shard> shards_;  // deque: stable addresses across registration
};

}  // namespace udb::obs
