// Adjusted Rand Index between two labelings — a soft similarity measure used
// in tests and benches as a sanity metric alongside the strict exactness
// checker (noise is treated as its own cluster for ARI purposes).

#pragma once

#include <cstdint>
#include <vector>

namespace udb {

[[nodiscard]] double adjusted_rand_index(const std::vector<std::int64_t>& a,
                                         const std::vector<std::int64_t>& b);

}  // namespace udb
