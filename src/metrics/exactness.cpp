#include "metrics/exactness.hpp"

#include <set>
#include <stdexcept>
#include <unordered_map>

#include "common/distance.hpp"

namespace udb {

std::size_t ClusteringResult::num_clusters() const {
  std::set<std::int64_t> ids;
  for (std::int64_t l : label)
    if (l != kNoise) ids.insert(l);
  return ids.size();
}

std::size_t ClusteringResult::num_core() const {
  std::size_t c = 0;
  for (std::uint8_t f : is_core) c += f;
  return c;
}

std::size_t ClusteringResult::num_border() const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < label.size(); ++i)
    if (kind(static_cast<PointId>(i)) == PointKind::Border) ++c;
  return c;
}

std::size_t ClusteringResult::num_noise() const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < label.size(); ++i)
    if (label[i] == kNoise) ++c;
  return c;
}

ExactnessReport compare_exact(const ClusteringResult& a,
                              const ClusteringResult& b) {
  ExactnessReport rep;
  if (a.size() != b.size()) {
    rep.detail = "size mismatch";
    return rep;
  }
  const std::size_t n = a.size();

  rep.core_sets_equal = true;
  for (std::size_t i = 0; i < n; ++i) {
    if ((a.is_core[i] != 0) != (b.is_core[i] != 0)) {
      rep.core_sets_equal = false;
      rep.detail = "core flag differs at point " + std::to_string(i);
      return rep;
    }
  }

  // Partition equality over core points: a's cluster id must map 1:1 to b's
  // cluster id across all cores.
  rep.core_partitions_equal = true;
  std::unordered_map<std::int64_t, std::int64_t> a_to_b, b_to_a;
  for (std::size_t i = 0; i < n; ++i) {
    if (!a.is_core[i]) continue;
    const std::int64_t la = a.label[i];
    const std::int64_t lb = b.label[i];
    if (la == kNoise || lb == kNoise) {
      rep.core_partitions_equal = false;
      rep.detail = "core point " + std::to_string(i) + " labeled noise";
      return rep;
    }
    auto [ita, ins_a] = a_to_b.try_emplace(la, lb);
    auto [itb, ins_b] = b_to_a.try_emplace(lb, la);
    if (ita->second != lb || itb->second != la) {
      rep.core_partitions_equal = false;
      rep.detail = "core partition differs at point " + std::to_string(i);
      return rep;
    }
  }

  rep.noise_sets_equal = true;
  for (std::size_t i = 0; i < n; ++i) {
    if ((a.label[i] == kNoise) != (b.label[i] == kNoise)) {
      rep.noise_sets_equal = false;
      rep.detail = "noise flag differs at point " + std::to_string(i);
      return rep;
    }
  }

  rep.cluster_counts_equal = a.num_clusters() == b.num_clusters();
  if (!rep.cluster_counts_equal) {
    rep.detail = "cluster counts differ: " + std::to_string(a.num_clusters()) +
                 " vs " + std::to_string(b.num_clusters());
  }
  return rep;
}

ClusteringResult canonicalize_clustering(const Dataset& ds,
                                         const DbscanParams& prm,
                                         ClusteringResult res) {
  const std::size_t n = res.size();
  if (n != ds.size())
    throw std::invalid_argument(
        "canonicalize_clustering: result/dataset size mismatch");
  const double eps2 = prm.eps * prm.eps;

  std::vector<PointId> cores;
  for (std::size_t i = 0; i < n; ++i)
    if (res.is_core[i]) cores.push_back(static_cast<PointId>(i));

  // Border re-attachment: nearest core strictly within eps, ties by
  // (squared distance, point id). O(borders * cores) — this helper exists
  // for test oracles and harness verification, not the serving hot path.
  for (std::size_t i = 0; i < n; ++i) {
    if (res.is_core[i] || res.label[i] == kNoise) continue;
    const double* p = ds.ptr(static_cast<PointId>(i));
    PointId best = kInvalidPoint;
    double best_d2 = 0.0;
    for (PointId c : cores) {
      const double d2 = sq_dist(p, ds.ptr(c), ds.dim());
      if (d2 >= eps2) continue;
      if (best == kInvalidPoint || d2 < best_d2 ||
          (d2 == best_d2 && c < best)) {
        best = c;
        best_d2 = d2;
      }
    }
    // A border point by definition has a core neighbor; defensively demote
    // to noise if the input was inconsistent.
    res.label[i] = best == kInvalidPoint ? kNoise : res.label[best];
  }

  // Renumber cluster ids by first occurrence in point order.
  std::unordered_map<std::int64_t, std::int64_t> renum;
  for (std::size_t i = 0; i < n; ++i) {
    if (res.label[i] == kNoise) continue;
    res.label[i] = renum
                       .try_emplace(res.label[i],
                                    static_cast<std::int64_t>(renum.size()))
                       .first->second;
  }
  return res;
}

}  // namespace udb
