// Exact-clustering comparison, following Section III of the paper: two
// clusterings are exact-equal iff they have (1) the same core-point set,
// (2) the same core-point-to-cluster membership (i.e. the same partition of
// core points), and (3) the same noise set. Border points may legally attach
// to different adjacent clusters depending on processing order, so border
// membership is excluded from equality — but a point's kind (core / border /
// noise) must match, since noise is order-independent.

#pragma once

#include <string>

#include "metrics/clustering.hpp"

namespace udb {

struct ExactnessReport {
  bool core_sets_equal = false;
  bool core_partitions_equal = false;
  bool noise_sets_equal = false;
  bool cluster_counts_equal = false;

  [[nodiscard]] bool exact() const noexcept {
    return core_sets_equal && core_partitions_equal && noise_sets_equal &&
           cluster_counts_equal;
  }

  // Human-readable description of the first observed discrepancy (empty if
  // exact). Used by the test suite for actionable failure messages.
  std::string detail;
};

[[nodiscard]] ExactnessReport compare_exact(const ClusteringResult& a,
                                            const ClusteringResult& b);

}  // namespace udb
