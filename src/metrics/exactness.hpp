// Exact-clustering comparison, following Section III of the paper: two
// clusterings are exact-equal iff they have (1) the same core-point set,
// (2) the same core-point-to-cluster membership (i.e. the same partition of
// core points), and (3) the same noise set. Border points may legally attach
// to different adjacent clusters depending on processing order, so border
// membership is excluded from equality — but a point's kind (core / border /
// noise) must match, since noise is order-independent.

#pragma once

#include <string>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct ExactnessReport {
  bool core_sets_equal = false;
  bool core_partitions_equal = false;
  bool noise_sets_equal = false;
  bool cluster_counts_equal = false;

  [[nodiscard]] bool exact() const noexcept {
    return core_sets_equal && core_partitions_equal && noise_sets_equal &&
           cluster_counts_equal;
  }

  // Human-readable description of the first observed discrepancy (empty if
  // exact). Used by the test suite for actionable failure messages.
  std::string detail;
};

[[nodiscard]] ExactnessReport compare_exact(const ClusteringResult& a,
                                            const ClusteringResult& b);

// Canonical form of a clustering: every legal clustering of the same point
// set maps to the same canonical labeling, so two canonical clusterings can
// be compared with plain vector equality (the check the crash harness and
// the incremental engine's differential suite use — stronger in practice
// than compare_exact because it also pins border membership to one rule).
//
//   1. Border re-attachment: each border point is re-assigned to the cluster
//      of its *nearest* core strictly within eps, ties broken by lower
//      squared distance then lower point id. DBSCAN leaves border membership
//      order-dependent; nearest-core is the one order-free choice.
//   2. Label renumbering: cluster ids are renumbered by first occurrence in
//      point order (0, 1, 2, ...).
//
// Core flags and the noise set are preserved exactly; only border labels and
// cluster id names change. `ds` must be the point set `res` was computed
// over, in the same order.
[[nodiscard]] ClusteringResult canonicalize_clustering(const Dataset& ds,
                                                       const DbscanParams& prm,
                                                       ClusteringResult res);

}  // namespace udb
