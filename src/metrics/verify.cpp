#include "metrics/verify.hpp"

#include <unordered_map>

#include "common/distance.hpp"
#include "unionfind/union_find.hpp"

namespace udb {

VerifyReport verify_dbscan(const Dataset& ds, const DbscanParams& params,
                           const ClusteringResult& result) {
  VerifyReport rep;
  const std::size_t n = ds.size();
  if (result.size() != n) {
    rep.detail = "result size does not match dataset";
    return rep;
  }
  const double eps2 = params.eps * params.eps;

  // --- core flags: |N_eps(p)| >= MinPts, counting p itself ---------------
  rep.core_flags_ok = true;
  std::vector<std::uint32_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t cnt = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (sq_dist(ds.ptr(static_cast<PointId>(i)),
                  ds.ptr(static_cast<PointId>(j)), ds.dim()) < eps2)
        ++cnt;
    }
    degree[i] = cnt;
    const bool should_be_core = cnt >= params.min_pts;
    if (should_be_core != (result.is_core[i] != 0)) {
      rep.core_flags_ok = false;
      rep.detail = "core flag wrong at point " + std::to_string(i);
      return rep;
    }
  }

  // --- maximality: cores within eps must share a cluster ------------------
  // (This is the condition QIDBSCAN-style shortcuts break.)
  rep.maximality_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!result.is_core[j]) continue;
      if (sq_dist(ds.ptr(static_cast<PointId>(i)),
                  ds.ptr(static_cast<PointId>(j)), ds.dim()) >= eps2)
        continue;
      if (result.label[i] != result.label[j]) {
        rep.maximality_ok = false;
        rep.detail = "cores " + std::to_string(i) + " and " +
                     std::to_string(j) + " within eps but in different "
                     "clusters";
        return rep;
      }
    }
  }

  // --- connectivity --------------------------------------------------------
  // With maximality already verified, each cluster's cores must form exactly
  // one component of the core-proximity graph (two components that never
  // touch cannot be density-connected), and every non-core member must be
  // directly density-reachable from some core of its own cluster.
  rep.connectivity_ok = true;
  UnionFind core_uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!result.is_core[j]) continue;
      if (sq_dist(ds.ptr(static_cast<PointId>(i)),
                  ds.ptr(static_cast<PointId>(j)), ds.dim()) < eps2)
        core_uf.union_sets(static_cast<PointId>(i), static_cast<PointId>(j));
    }
  }
  std::unordered_map<std::int64_t, PointId> cluster_component;
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    const PointId root = core_uf.find(static_cast<PointId>(i));
    auto [it, inserted] = cluster_component.try_emplace(result.label[i], root);
    if (it->second != root) {
      rep.connectivity_ok = false;
      rep.detail = "cluster " + std::to_string(result.label[i]) +
                   " contains disconnected core groups";
      return rep;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (result.is_core[i] || result.label[i] == kNoise) continue;
    // Border point: must be within eps of a core of its own cluster.
    bool anchored = false;
    for (std::size_t j = 0; j < n && !anchored; ++j) {
      if (!result.is_core[j] || result.label[j] != result.label[i]) continue;
      if (sq_dist(ds.ptr(static_cast<PointId>(i)),
                  ds.ptr(static_cast<PointId>(j)), ds.dim()) < eps2)
        anchored = true;
    }
    if (!anchored) {
      rep.connectivity_ok = false;
      rep.detail = "border point " + std::to_string(i) +
                   " has no core of its own cluster within eps";
      return rep;
    }
  }

  // --- noise ---------------------------------------------------------------
  rep.noise_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    bool near_core = false;
    for (std::size_t j = 0; j < n && !near_core; ++j) {
      if (!result.is_core[j]) continue;
      if (sq_dist(ds.ptr(static_cast<PointId>(i)),
                  ds.ptr(static_cast<PointId>(j)), ds.dim()) < eps2)
        near_core = true;
    }
    const bool should_be_noise = !result.is_core[i] && !near_core;
    if (should_be_noise != (result.label[i] == kNoise)) {
      rep.noise_ok = false;
      rep.detail = "noise flag wrong at point " + std::to_string(i);
      return rep;
    }
  }

  return rep;
}

}  // namespace udb
