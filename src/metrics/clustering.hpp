// The common output type of every clustering algorithm in the library, plus
// small derived statistics.

#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

constexpr std::int64_t kNoise = -1;

// DBSCAN density parameters (Section II of the paper).
struct DbscanParams {
  double eps = 1.0;
  std::uint32_t min_pts = 5;
};

enum class PointKind : std::uint8_t { Core, Border, Noise };

struct ClusteringResult {
  // label[i] >= 0 is an arbitrary cluster id; kNoise marks noise. Label
  // values carry no meaning across algorithms — comparisons are done on the
  // induced partition, never on raw ids.
  std::vector<std::int64_t> label;
  std::vector<std::uint8_t> is_core;  // 1 iff point i is a core point

  [[nodiscard]] std::size_t size() const noexcept { return label.size(); }

  [[nodiscard]] PointKind kind(PointId i) const noexcept {
    if (is_core[i]) return PointKind::Core;
    return label[i] == kNoise ? PointKind::Noise : PointKind::Border;
  }

  [[nodiscard]] std::size_t num_clusters() const;
  [[nodiscard]] std::size_t num_core() const;
  [[nodiscard]] std::size_t num_border() const;
  [[nodiscard]] std::size_t num_noise() const;
};

}  // namespace udb
