#include "metrics/ari.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "common/status.hpp"

namespace udb {

namespace {
double choose2(double x) { return x * (x - 1.0) / 2.0; }
}  // namespace

double adjusted_rand_index(const std::vector<std::int64_t>& a,
                           const std::vector<std::int64_t>& b) {
  if (a.size() != b.size())
    throw StatusError(
        InvalidArgumentError("adjusted_rand_index: size mismatch"));
  const std::size_t n = a.size();
  if (n == 0) return 1.0;

  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> contingency;
  std::map<std::int64_t, std::size_t> row_sum, col_sum;
  for (std::size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++row_sum[a[i]];
    ++col_sum[b[i]];
  }

  double sum_comb = 0.0;
  for (const auto& [key, cnt] : contingency)
    sum_comb += choose2(static_cast<double>(cnt));
  double sum_rows = 0.0;
  for (const auto& [key, cnt] : row_sum)
    sum_rows += choose2(static_cast<double>(cnt));
  double sum_cols = 0.0;
  for (const auto& [key, cnt] : col_sum)
    sum_cols += choose2(static_cast<double>(cnt));

  const double total = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both clusterings are trivial
  return (sum_comb - expected) / (max_index - expected);
}

}  // namespace udb
