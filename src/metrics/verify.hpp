// Direct verification of the DBSCAN cluster conditions (Section II of the
// paper, the three conditions Theorem 1 proves for µDBSCAN): given a dataset,
// parameters and a candidate ClusteringResult, check from first principles —
// no reference clustering needed — that
//
//   * core flags are right: is_core[p]  <=>  |N_eps(p)| >= MinPts;
//   * Connectivity: every two points sharing a cluster are density-connected
//     (equivalently: each cluster's cores form one connected component of
//     the core-proximity graph, and each non-core member is ddr to one of
//     its cluster's cores);
//   * Maximality: density-reachability never crosses cluster boundaries
//     (cores within eps of each other share a cluster);
//   * Noise: a point is labeled noise iff it is neither core nor within eps
//     of any core.
//
// O(n^2); intended for tests and the CLI's --verify flag, as an independent
// oracle beside brute-force comparison.

#pragma once

#include <string>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct VerifyReport {
  bool core_flags_ok = false;
  bool connectivity_ok = false;
  bool maximality_ok = false;
  bool noise_ok = false;

  [[nodiscard]] bool valid() const noexcept {
    return core_flags_ok && connectivity_ok && maximality_ok && noise_ok;
  }

  std::string detail;  // first violation found, empty if valid
};

[[nodiscard]] VerifyReport verify_dbscan(const Dataset& ds,
                                         const DbscanParams& params,
                                         const ClusteringResult& result);

}  // namespace udb
