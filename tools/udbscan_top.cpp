// udbscan_top — `top` for udbscan_serve replicas: scrapes the TELEMETRY
// admin RPC from one or more servers and renders a refreshing terminal view
// of the rolling request rate, latency percentiles, and failure counters
// (docs/OBSERVABILITY.md, "Live telemetry").
//
//   $ udbscan_top --ports 41233,41234
//   $ udbscan_top --ports 41233 --interval-ms 500
//   $ udbscan_top --ports 41233 --iterations 3 --no-clear   # CI-friendly
//
// Each refresh opens a fresh connection per replica (a scrape is one
// roundtrip; holding a connection would pin an idle-disconnect slot and
// skew the very numbers being watched). An unreachable replica renders as
// "down" and keeps being polled — watching a replica come back is the point.
//
// Exit codes: 0 after --iterations refreshes (or on EOF/signal for the
// interactive default), 2 for bad arguments.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

using namespace udb;

namespace {

std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> out;
  std::stringstream ss(csv);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    const int p = std::stoi(cell);
    if (p <= 0 || p > 65535)
      throw std::invalid_argument("udbscan_top: bad port: " + cell);
    out.push_back(static_cast<std::uint16_t>(p));
  }
  return out;
}

// One scrape = one connection, one TELEMETRY roundtrip.
bool scrape(std::uint16_t port, double timeout, serve::TelemetryReport& out) {
  auto client = serve::Client::connect(port, timeout);
  if (!client.ok()) return false;
  auto t = client->telemetry();
  if (!t.ok()) return false;
  out = *t;
  return true;
}

void render(const std::vector<std::uint16_t>& ports,
            const std::vector<serve::TelemetryReport>& reports,
            const std::vector<bool>& up) {
  std::printf("%-7s %9s %8s %9s %9s %9s %9s %9s %7s %7s\n", "port", "uptime",
              "inflight", "qps(1s)", "qps(60s)", "p50(10s)", "p99(10s)",
              "p999", "shed", "errors");
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (!up[i]) {
      std::printf("%-7u %9s\n", ports[i], "down");
      continue;
    }
    const serve::TelemetryReport& t = reports[i];
    // windows[] is ordered {1s, 10s, 60s} by the server.
    const serve::TelemetryWindow& w1 = t.windows[0];
    const serve::TelemetryWindow& w10 = t.windows[1];
    const serve::TelemetryWindow& w60 = t.windows[2];
    std::printf(
        "%-7u %8.0fs %8llu %9.1f %9.1f %8.0fu %8.0fu %8.0fu %7llu %7llu\n",
        ports[i], static_cast<double>(t.uptime_us) / 1e6,
        static_cast<unsigned long long>(t.inflight), w1.qps, w60.qps,
        w10.p50_us, w10.p99_us, w10.p999_us,
        static_cast<unsigned long long>(t.shed_load_total +
                                        t.shed_connections_total),
        static_cast<unsigned long long>(t.errors_total));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string ports_csv = cli.get_string("ports", "");
    const std::int64_t interval_ms =
        cli.get_int_at_least("interval-ms", 1000, 10);
    const std::int64_t iterations = cli.get_int_at_least("iterations", 0, 0);
    const bool no_clear = cli.get_bool("no-clear", false);
    const double timeout = cli.get_positive_double("timeout-s", 2.0);
    cli.check_unused();

    if (ports_csv.empty()) {
      std::fprintf(stderr,
                   "usage: udbscan_top --ports P1,P2,... [--interval-ms 1000] "
                   "[--iterations N] [--no-clear] [--timeout-s S]\n");
      return 2;
    }
    const std::vector<std::uint16_t> ports = parse_ports(ports_csv);

    for (std::int64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
      std::vector<serve::TelemetryReport> reports(ports.size());
      std::vector<bool> up(ports.size(), false);
      for (std::size_t i = 0; i < ports.size(); ++i)
        up[i] = scrape(ports[i], timeout, reports[i]);
      if (!no_clear) std::printf("\x1b[2J\x1b[H");  // clear + home
      render(ports, reports, up);
      std::fflush(stdout);
      const bool last = iterations != 0 && iter + 1 == iterations;
      if (!last)
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "udbscan_top: error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udbscan_top: error: %s\n", e.what());
    return 1;
  }
}
