// crashharness: kill-and-recover matrix for the durable storage tier
// (docs/ROBUSTNESS.md §Durability). The workload is a scripted streaming
// ingest — WAL append, micro-cluster insert, periodic snapshot-generation
// publish + WAL reset — and the harness attacks it from every angle the VFS
// fault layer (common/vfs.*) can model:
//
//   * crash sweep    — forked children run the workload with a crash point
//                      set at a sampled VFS operation ordinal and die there
//                      with _Exit (no destructors, nothing flushed), like
//                      power loss between syscalls;
//   * ENOSPC sweep   — injected mid-write disk-full across seeds (the
//                      workload must stop cleanly with RESOURCE_EXHAUSTED);
//   * fsync sweep    — injected fsync failures (clean DATA_LOSS);
//   * flaky-io run   — EINTR + short reads/writes at high rate (all retried:
//                      the workload must complete and lose nothing);
//   * read-side rot  — bit flips and hard truncations injected while
//                      *recovering* (CRCs must catch every flip);
//   * on-disk rot    — a byte of the newest generation flipped for real
//                      (load must fall back to the previous generation).
//
// After every scenario the harness recovers (serve::recover_stream) and
// asserts the durability invariants:
//   1. every non-tmp generation file on disk parses — a failed or killed
//      save never damages a previously published generation;
//   2. the recovered points are byte-for-byte a prefix of the scripted
//      ingestion sequence — never reordered, duplicated, or invented;
//   3. the recovered model's clustering (labels + core flags) is
//      byte-identical to fitting from scratch on that prefix — the paper's
//      exactness bar survives recovery;
//   4. the recovered stream keeps working: ingesting the remaining points
//      yields a clustering byte-identical to a never-crashed run.
// Exit status is non-zero if any scenario violates any invariant.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/vfs.hpp"
#include "core/streaming.hpp"
#include "core/wal.hpp"
#include "metrics/exactness.hpp"
#include "serve/snapstore.hpp"

using namespace udb;

namespace {

struct Workload {
  std::size_t dim = 2;
  DbscanParams params{0.35, 4};
  std::size_t batches = 24;
  std::size_t batch_points = 25;
  std::size_t publish_every = 5;
  std::vector<double> coords;  // the scripted sequence, batches*batch_points

  [[nodiscard]] std::size_t total_points() const noexcept {
    return batches * batch_points;
  }
};

Workload make_workload(std::uint64_t seed, bool quick) {
  Workload w;
  if (quick) w.batches = 12;
  Rng rng(seed);
  w.coords.reserve(w.total_points() * w.dim);
  // Blobs around a handful of centres plus background noise — enough
  // structure that clusters form and labels are non-trivial.
  const double centres[][2] = {{0, 0}, {3, 1}, {-2, 4}, {1, -3}, {5, 5}};
  for (std::size_t i = 0; i < w.total_points(); ++i) {
    if (rng.next_double() < 0.15) {
      w.coords.push_back(rng.uniform(-8.0, 8.0));
      w.coords.push_back(rng.uniform(-8.0, 8.0));
    } else {
      const auto& c = centres[rng.uniform_index(5)];
      w.coords.push_back(c[0] + 0.25 * rng.normal());
      w.coords.push_back(c[1] + 0.25 * rng.normal());
    }
  }
  return w;
}

using ModelSnapshot = serve::ModelSnapshot;
using serve::SnapshotStore;
using serve::SnapshotStoreConfig;

ModelSnapshot snapshot_of(StreamingMuDbscan& stream) {
  ModelSnapshot snap;
  snap.result = stream.result();
  snap.data = stream.dataset();
  snap.params = stream.params();
  snap.two_eps_rule = stream.config().two_eps_rule;
  snap.bulk_aux = stream.config().bulk_aux;
  return snap;
}

// The scripted run. Stops (cleanly, Status) at the first I/O failure: every
// acknowledged point stays a prefix of the script, which is what recovery
// is then checked against.
Status run_workload(const Workload& w, const std::string& dir) {
  Status s = vfs::make_dirs(dir);
  if (!s.ok()) return s;
  auto store = SnapshotStore::open(dir + "/store", SnapshotStoreConfig{});
  if (!store.ok()) return store.status();
  auto wal = WalWriter::open(dir + "/wal", w.dim);
  if (!wal.ok()) return wal.status();
  StreamingMuDbscan stream(w.dim, w.params);
  for (std::size_t b = 0; b < w.batches; ++b) {
    const std::span<const double> batch(
        w.coords.data() + b * w.batch_points * w.dim, w.batch_points * w.dim);
    // WAL first: a point is acknowledged only once its record is durable.
    s = wal->append(stream.size(), batch);
    if (!s.ok()) return s;
    stream.insert_batch(
        Dataset(w.dim, std::vector<double>(batch.begin(), batch.end())));
    if ((b + 1) % w.publish_every == 0) {
      const ModelSnapshot snap = snapshot_of(stream);
      auto gen = store->save(snap);
      if (!gen.ok()) return gen.status();
      s = wal->reset();
      if (!s.ok()) return s;
    }
  }
  return wal->close();
}

struct Verify {
  bool ok = true;
  std::string why;
  std::size_t recovered = 0;
  std::uint64_t generation = 0;

  static Verify fail(std::string msg) { return {false, std::move(msg), 0, 0}; }
};

bool labels_equal(const ClusteringResult& a, const ClusteringResult& b) {
  return a.label == b.label && a.is_core == b.is_core;
}

// The streaming engine's labels are canonical (border points attached to
// their nearest core, cluster ids renumbered by first occurrence), so the
// batch reference must be canonicalized before a bitwise comparison — raw
// mu_dbscan output leaves border attachment order-dependent.
ClusteringResult batch_reference(const Dataset& ds, const DbscanParams& prm) {
  return canonicalize_clustering(ds, prm, mu_dbscan(ds, prm));
}

// Checks the four durability invariants against whatever the scenario left
// in `dir`. Runs with no fault plan installed unless the caller says so.
Verify verify_dir(const Workload& w, const std::string& dir,
                  bool allow_corrupt_gens) {
  auto store = SnapshotStore::open(dir + "/store", SnapshotStoreConfig{});
  if (!store.ok())
    return Verify::fail("store open failed: " + store.status().to_string());

  // Invariant 1: every published generation is intact.
  auto gens = store->generations();
  if (!gens.ok())
    return Verify::fail("generation listing failed: " +
                        gens.status().to_string());
  if (!allow_corrupt_gens) {
    for (std::uint64_t g : *gens) {
      auto bytes = vfs::read_file(store->generation_path(g));
      if (!bytes.ok())
        return Verify::fail("generation " + std::to_string(g) +
                            " unreadable: " + bytes.status().to_string());
      auto snap = serve::parse_model(
          std::span<const std::uint8_t>(*bytes), store->generation_path(g));
      if (!snap.ok())
        return Verify::fail("generation " + std::to_string(g) +
                            " corrupt after failed/killed save: " +
                            snap.status().to_string());
    }
  }

  // Invariant 2 + 3: recovery is an exact prefix, clustered exactly.
  auto rec = serve::recover_stream(*store, dir + "/wal", w.dim, w.params);
  if (!rec.ok())
    return Verify::fail("recover_stream failed: " + rec.status().to_string());
  StreamingMuDbscan& stream = *rec->stream;
  const std::size_t n_rec = stream.size();
  if (n_rec > w.total_points())
    return Verify::fail("recovered " + std::to_string(n_rec) +
                        " points, script only has " +
                        std::to_string(w.total_points()));
  if (n_rec > 0) {
    const Dataset& got = stream.dataset();
    if (std::memcmp(got.raw().data(), w.coords.data(),
                    n_rec * w.dim * sizeof(double)) != 0)
      return Verify::fail("recovered points are not a prefix of the script");
    std::vector<double> prefix(w.coords.begin(),
                               w.coords.begin() + n_rec * w.dim);
    const ClusteringResult fresh =
        batch_reference(Dataset(w.dim, std::move(prefix)), w.params);
    if (!labels_equal(stream.result(), fresh))
      return Verify::fail(
          "recovered clustering differs from fit-from-scratch on " +
          std::to_string(n_rec) + " recovered points");
  }

  // Invariant 4: the recovered stream is usable — finish the script and the
  // final clustering matches a run that never crashed.
  for (std::size_t i = n_rec; i < w.total_points(); ++i)
    stream.insert(std::span<const double>(w.coords.data() + i * w.dim, w.dim));
  const ClusteringResult full =
      batch_reference(Dataset(w.dim, std::vector<double>(w.coords)), w.params);
  if (!labels_equal(stream.result(), full))
    return Verify::fail("post-recovery ingest diverges from a clean run");

  Verify v;
  v.recovered = n_rec;
  v.generation = rec->generation;
  return v;
}

// Runs `work` in a forked child that _Exit()s at VFS op `crash_at`.
// Returns false only if the child died in an unexpected way.
bool run_crashing_child(const std::function<Status()>& work,
                        std::uint64_t seed, std::int64_t crash_at,
                        std::string* why) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    *why = "fork failed";
    return false;
  }
  if (pid == 0) {
    // Child: single-threaded by construction (the workload never spawns
    // threads), so fork is safe. No printing, no destructors on the way out.
    vfs::IoFaultPlan plan;
    plan.seed = seed;
    plan.crash_at_op = crash_at;
    vfs::reset_io_fault_state();
    vfs::install_io_fault_plan(&plan);
    const Status s = work();
    vfs::install_io_fault_plan(nullptr);
    std::_Exit(s.ok() ? 0 : 3);
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    *why = "waitpid failed";
    return false;
  }
  if (!WIFEXITED(wstatus)) {
    *why = "child killed by signal " + std::to_string(WTERMSIG(wstatus));
    return false;
  }
  const int code = WEXITSTATUS(wstatus);
  if (code != 0 && code != vfs::kIoCrashExit) {
    *why = "child exited with unexpected code " + std::to_string(code);
    return false;
  }
  return true;
}

// Measures how many faultable VFS operations one clean workload performs —
// the sweep space for crash points.
std::uint64_t measure_ops(const std::function<Status()>& work) {
  vfs::IoFaultPlan plan;  // all rates zero, no crash point: count only
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan);
  const Status s = work();
  vfs::install_io_fault_plan(nullptr);
  const std::uint64_t ops = vfs::io_fault_next_op();
  vfs::reset_io_fault_state();
  if (!s.ok()) {
    std::fprintf(stderr, "crashharness: baseline workload failed: %s\n",
                 s.to_string().c_str());
    return 0;
  }
  return ops;
}

// ---- ingest + delete workload (docs/INCREMENTAL.md, WAL v2 tombstones) ----
//
// A scripted stream of record-aligned operations: insert batches interleaved
// with single-point deletes, every publish stamping the WAL with the new
// generation's epoch (reset(gen)). The recovery invariant is stronger than
// "prefix of the insert sequence": the recovered survivor set must equal the
// state at SOME operation boundary of the script, clustered exactly — a
// tombstone is never half-applied, replayed against the wrong generation, or
// reordered against the inserts around it.

struct DeleteOp {
  bool is_delete = false;
  std::vector<double> coords;  // one point (delete) or a whole batch (insert)
  bool publish_after = false;
};

struct DeleteScript {
  std::vector<DeleteOp> ops;
  // Survivor coords after each op boundary: states[k] is the flat survivor
  // sequence once ops[0..k) have been applied (states[0] is empty).
  std::vector<std::vector<double>> states;
};

DeleteScript make_delete_script(const Workload& w, std::uint64_t seed) {
  DeleteScript sc;
  Rng rng(seed ^ 0xDE1E7Eull);
  // Simulated point store: insertion order, erased points flagged dead.
  std::vector<std::vector<double>> pts;
  std::vector<std::size_t> alive;  // indices into pts
  const auto snapshot_state = [&] {
    std::vector<double> flat;
    for (const auto& p : pts)
      if (!p.empty()) flat.insert(flat.end(), p.begin(), p.end());
    sc.states.push_back(std::move(flat));
  };
  snapshot_state();  // boundary 0: empty
  for (std::size_t b = 0; b < w.batches; ++b) {
    DeleteOp ins;
    ins.coords.assign(w.coords.begin() + b * w.batch_points * w.dim,
                      w.coords.begin() + (b + 1) * w.batch_points * w.dim);
    sc.ops.push_back(std::move(ins));
    for (std::size_t i = 0; i < w.batch_points; ++i) {
      alive.push_back(pts.size());
      pts.emplace_back(
          w.coords.begin() + (b * w.batch_points + i) * w.dim,
          w.coords.begin() + (b * w.batch_points + i + 1) * w.dim);
    }
    snapshot_state();
    const std::size_t deletes = w.batch_points / 5;
    for (std::size_t d = 0; d < deletes && alive.size() > 1; ++d) {
      const std::size_t j = rng.uniform_index(alive.size());
      DeleteOp del;
      del.is_delete = true;
      del.coords = pts[alive[j]];
      pts[alive[j]].clear();
      alive[j] = alive.back();
      alive.pop_back();
      sc.ops.push_back(std::move(del));
      snapshot_state();
    }
    if ((b + 1) % w.publish_every == 0) sc.ops.back().publish_after = true;
  }
  return sc;
}

Status run_delete_workload(const Workload& w, const DeleteScript& sc,
                           const std::string& dir) {
  Status s = vfs::make_dirs(dir);
  if (!s.ok()) return s;
  auto store = SnapshotStore::open(dir + "/store", SnapshotStoreConfig{});
  if (!store.ok()) return store.status();
  auto wal = WalWriter::open(dir + "/wal", w.dim);
  if (!wal.ok()) return wal.status();
  StreamingMuDbscan stream(w.dim, w.params);
  std::uint64_t next_start = 0;
  for (const DeleteOp& op : sc.ops) {
    if (op.is_delete) {
      s = wal->append_delete(op.coords);
      if (!s.ok()) return s;
      if (stream.erase_equal(op.coords) == kInvalidPoint)
        return InternalError("delete workload: scripted erase missed");
    } else {
      s = wal->append(next_start, op.coords);
      if (!s.ok()) return s;
      next_start += op.coords.size() / w.dim;
      stream.insert_batch(Dataset(w.dim, std::vector<double>(op.coords)));
    }
    if (op.publish_after) {
      auto gen = store->save(snapshot_of(stream));
      if (!gen.ok()) return gen.status();
      s = wal->reset(*gen);  // stamp the log with the generation it extends
      if (!s.ok()) return s;
    }
  }
  return wal->close();
}

Verify verify_delete_dir(const Workload& w, const DeleteScript& sc,
                         const std::string& dir) {
  auto store = SnapshotStore::open(dir + "/store", SnapshotStoreConfig{});
  if (!store.ok())
    return Verify::fail("store open failed: " + store.status().to_string());
  auto gens = store->generations();
  if (!gens.ok())
    return Verify::fail("generation listing failed: " +
                        gens.status().to_string());
  for (std::uint64_t g : *gens) {
    auto bytes = vfs::read_file(store->generation_path(g));
    if (!bytes.ok())
      return Verify::fail("generation " + std::to_string(g) +
                          " unreadable: " + bytes.status().to_string());
    auto snap = serve::parse_model(std::span<const std::uint8_t>(*bytes),
                                   store->generation_path(g));
    if (!snap.ok())
      return Verify::fail("generation " + std::to_string(g) +
                          " corrupt after failed/killed save: " +
                          snap.status().to_string());
  }

  auto rec = serve::recover_stream(*store, dir + "/wal", w.dim, w.params);
  if (!rec.ok())
    return Verify::fail("recover_stream failed: " + rec.status().to_string());
  StreamingMuDbscan& stream = *rec->stream;
  const std::size_t n_rec = stream.size();

  // Invariant: the recovered survivors equal SOME op boundary of the script.
  std::size_t k = sc.states.size();
  const std::vector<double>& got =
      stream.size() == 0 ? sc.states[0] : stream.dataset().raw();
  for (std::size_t i = 0; i < sc.states.size(); ++i) {
    if (sc.states[i] == got) {
      k = i;
      break;
    }
  }
  if (k == sc.states.size())
    return Verify::fail(
        "recovered survivors (" + std::to_string(stream.size()) +
        " pts) match no operation boundary of the delete script");
  if (stream.size() > 0 &&
      !labels_equal(stream.result(),
                    batch_reference(stream.dataset(), w.params)))
    return Verify::fail("recovered clustering differs from the canonical "
                        "batch refit at op boundary " + std::to_string(k));

  // Usability: finish the script from that boundary; the final state must be
  // byte-identical to a run that never crashed.
  for (std::size_t i = k; i < sc.ops.size(); ++i) {
    const DeleteOp& op = sc.ops[i];
    if (op.is_delete) {
      if (stream.erase_equal(op.coords) == kInvalidPoint)
        return Verify::fail("post-recovery scripted erase missed at op " +
                            std::to_string(i));
    } else {
      stream.insert_batch(Dataset(w.dim, std::vector<double>(op.coords)));
    }
  }
  if (stream.dataset().raw() != sc.states.back())
    return Verify::fail("post-recovery replay does not reach the clean-run "
                        "final state");
  if (!labels_equal(stream.result(),
                    batch_reference(stream.dataset(), w.params)))
    return Verify::fail("post-recovery final clustering diverges from the "
                        "canonical batch refit");

  Verify v;
  v.recovered = n_rec;
  v.generation = rec->generation;
  return v;
}

int g_failures = 0;

void report(const std::string& name, const Verify& v) {
  if (v.ok) {
    std::printf("  %-34s ok (recovered %zu pts, gen %llu)\n", name.c_str(),
                v.recovered, static_cast<unsigned long long>(v.generation));
  } else {
    std::printf("  %-34s FAIL: %s\n", name.c_str(), v.why.c_str());
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const bool quick = cli.get_bool("quick", false);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 7));
    std::string base = cli.get_string("dir", "");
    const std::int64_t crashes =
        cli.get_int("crashes", quick ? 12 : 40);
    const std::int64_t fault_seeds =
        cli.get_int("fault-seeds", quick ? 4 : 10);
    cli.check_unused();

    if (base.empty()) {
      char tmpl[] = "/tmp/crashharness.XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        std::fprintf(stderr, "crashharness: mkdtemp failed\n");
        return 1;
      }
      base = tmpl;
    }
    const Workload w = make_workload(seed, quick);

    std::printf("crashharness: scripted ingest of %zu points (%zu batches, "
                "publish every %zu), scratch %s\n",
                w.total_points(), w.batches, w.publish_every, base.c_str());

    // ---- crash-point sweep ------------------------------------------------
    const std::uint64_t total_ops =
        measure_ops([&] { return run_workload(w, base + "/baseline"); });
    if (total_ops == 0) return 1;
    {
      const Verify v = verify_dir(w, base + "/baseline", false);
      report("baseline (no faults)", v);
      if (v.ok && v.recovered != w.total_points()) {
        std::printf("  baseline recovered %zu of %zu points\n", v.recovered,
                    w.total_points());
        ++g_failures;
      }
    }

    std::printf("crash sweep: %lld kill points over %llu VFS ops\n",
                static_cast<long long>(crashes),
                static_cast<unsigned long long>(total_ops));
    std::set<std::uint64_t> points = {0, 1, total_ops / 2, total_ops - 1};
    Rng rng(seed ^ 0xC4A54ull);
    while (points.size() < static_cast<std::size_t>(crashes) &&
           points.size() < total_ops)
      points.insert(rng.uniform_index(total_ops));
    for (const std::uint64_t k : points) {
      const std::string dir = base + "/crash_" + std::to_string(k);
      std::string why;
      if (!run_crashing_child([&] { return run_workload(w, dir); }, seed,
                              static_cast<std::int64_t>(k), &why)) {
        std::printf("  crash@%-26llu FAIL: %s\n",
                    static_cast<unsigned long long>(k), why.c_str());
        ++g_failures;
        continue;
      }
      report("crash@" + std::to_string(k), verify_dir(w, dir, false));
    }

    // ---- ingest + delete crash sweep (WAL v2 tombstones, epoch gating) ---
    {
      const DeleteScript sc = make_delete_script(w, seed);
      const std::string bdir = base + "/del_baseline";
      const std::uint64_t del_ops =
          measure_ops([&] { return run_delete_workload(w, sc, bdir); });
      if (del_ops == 0) {
        ++g_failures;
      } else {
        const Verify v = verify_delete_dir(w, sc, bdir);
        report("delete baseline (no faults)", v);
        if (v.ok && v.recovered * w.dim != sc.states.back().size()) {
          std::printf("  delete baseline recovered %zu pts, clean run ends "
                      "with %zu\n",
                      v.recovered, sc.states.back().size() / w.dim);
          ++g_failures;
        }
        const std::size_t del_crashes =
            std::max<std::size_t>(8, static_cast<std::size_t>(crashes) / 2);
        std::printf("delete crash sweep: %zu kill points over %llu VFS ops\n",
                    del_crashes, static_cast<unsigned long long>(del_ops));
        std::set<std::uint64_t> del_points = {0, 1, del_ops / 2, del_ops - 1};
        Rng del_rng(seed ^ 0xDE1ull);
        while (del_points.size() < del_crashes && del_points.size() < del_ops)
          del_points.insert(del_rng.uniform_index(del_ops));
        for (const std::uint64_t k : del_points) {
          const std::string dir = base + "/del_crash_" + std::to_string(k);
          std::string why;
          if (!run_crashing_child(
                  [&] { return run_delete_workload(w, sc, dir); }, seed,
                  static_cast<std::int64_t>(k), &why)) {
            std::printf("  del_crash@%-22llu FAIL: %s\n",
                        static_cast<unsigned long long>(k), why.c_str());
            ++g_failures;
            continue;
          }
          report("del_crash@" + std::to_string(k),
                 verify_delete_dir(w, sc, dir));
        }
      }
    }

    // ---- injected write-side fault sweeps --------------------------------
    struct FaultCase {
      const char* name;
      double vfs::IoFaultPlan::*rate;
      double value;
      StatusCode expect;  // a failing workload must report exactly this
    };
    const FaultCase cases[] = {
        {"enospc", &vfs::IoFaultPlan::enospc_rate, 0.04,
         StatusCode::kResourceExhausted},
        {"fsync-fail", &vfs::IoFaultPlan::fsync_fail_rate, 0.04,
         StatusCode::kDataLoss},
    };
    for (const FaultCase& fc : cases) {
      std::printf("%s sweep: %lld seeds at rate %.2f\n", fc.name,
                  static_cast<long long>(fault_seeds), fc.value);
      for (std::int64_t s = 0; s < fault_seeds; ++s) {
        const std::string dir =
            base + "/" + fc.name + "_" + std::to_string(s);
        vfs::IoFaultPlan plan;
        plan.seed = seed + static_cast<std::uint64_t>(s) * 7919;
        plan.*fc.rate = fc.value;
        vfs::reset_io_fault_state();
        vfs::install_io_fault_plan(&plan);
        const Status st = run_workload(w, dir);
        vfs::install_io_fault_plan(nullptr);
        const std::string name =
            std::string(fc.name) + " seed " + std::to_string(s);
        if (!st.ok() && st.code() != fc.expect) {
          std::printf("  %-34s FAIL: expected %s, got %s\n", name.c_str(),
                      status_code_name(fc.expect), st.to_string().c_str());
          ++g_failures;
          continue;
        }
        report(name, verify_dir(w, dir, false));
      }
    }

    // ---- flaky but recoverable I/O: retries must hide all of it ----------
    {
      const std::string dir = base + "/flaky";
      vfs::IoFaultPlan plan;
      plan.seed = seed + 101;
      plan.eintr_rate = 0.2;
      plan.short_read_rate = 0.2;
      plan.short_write_rate = 0.2;
      vfs::reset_io_fault_state();
      vfs::install_io_fault_plan(&plan);
      const Status st = run_workload(w, dir);
      vfs::install_io_fault_plan(nullptr);
      const vfs::IoFaultCounts c = vfs::io_fault_counts();
      if (!st.ok()) {
        std::printf("  %-34s FAIL: %s\n", "flaky io (retried faults)",
                    st.to_string().c_str());
        ++g_failures;
      } else {
        const Verify v = verify_dir(w, dir, false);
        report("flaky io (retried faults)", v);
        if (v.ok && v.recovered != w.total_points()) {
          std::printf("  flaky io lost points: %zu of %zu\n", v.recovered,
                      w.total_points());
          ++g_failures;
        }
        std::printf("  (injected: %llu eintr, %llu short reads, %llu short "
                    "writes)\n",
                    static_cast<unsigned long long>(c.eintr),
                    static_cast<unsigned long long>(c.short_reads),
                    static_cast<unsigned long long>(c.short_writes));
      }
    }

    // ---- read-side rot injected during recovery itself -------------------
    {
      const std::string dir = base + "/readrot";
      if (Status st = run_workload(w, dir); !st.ok()) {
        std::printf("  %-34s FAIL: clean run failed: %s\n", "read-side rot",
                    st.to_string().c_str());
        ++g_failures;
      } else {
        for (std::int64_t s = 0; s < fault_seeds; ++s) {
          vfs::IoFaultPlan plan;
          plan.seed = seed + 1000 + static_cast<std::uint64_t>(s);
          plan.bitrot_rate = 0.05;
          plan.read_truncate_rate = 0.02;
          vfs::reset_io_fault_state();
          vfs::install_io_fault_plan(&plan);
          // Recovery under fire must fail cleanly or produce an exact
          // prefix; it must never propagate rotted bytes into a model.
          const Verify v = verify_dir(w, dir, true);
          vfs::install_io_fault_plan(nullptr);
          const std::string name = "read rot seed " + std::to_string(s);
          if (!v.ok && v.why.find("recover_stream failed") != 0 &&
              v.why.find("unreadable") == std::string::npos &&
              v.why.find("store open failed") != 0 &&
              v.why.find("generation listing failed") != 0) {
            std::printf("  %-34s FAIL: %s\n", name.c_str(), v.why.c_str());
            ++g_failures;
          } else {
            std::printf("  %-34s ok (%s)\n", name.c_str(),
                        v.ok ? "exact prefix" : "clean error");
          }
        }
      }
    }

    // ---- real on-disk corruption: generation fallback --------------------
    {
      const std::string dir = base + "/diskrot";
      Status st = run_workload(w, dir);
      auto store = SnapshotStore::open(dir + "/store", SnapshotStoreConfig{});
      if (!st.ok() || !store.ok()) {
        std::printf("  %-34s FAIL: setup: %s\n", "on-disk rot fallback",
                    (st.ok() ? store.status() : st).to_string().c_str());
        ++g_failures;
      } else {
        auto gens = store->generations();
        if (!gens.ok() || gens->size() < 2) {
          std::printf("  %-34s FAIL: need >= 2 generations to test fallback\n",
                      "on-disk rot fallback");
          ++g_failures;
        } else {
          const std::uint64_t newest = gens->back();
          const std::string victim = store->generation_path(newest);
          auto bytes = vfs::read_file(victim);
          if (!bytes.ok()) {
            std::printf("  %-34s FAIL: cannot read victim\n",
                        "on-disk rot fallback");
            ++g_failures;
          } else {
            (*bytes)[bytes->size() / 2] ^= 0x20;  // one flipped bit, mid-file
            Status ws = vfs::write_file(victim, bytes->data(), bytes->size());
            const Verify v = verify_dir(w, dir, true);
            if (!ws.ok() || !v.ok) {
              std::printf("  %-34s FAIL: %s\n", "on-disk rot fallback",
                          (!ws.ok() ? ws.to_string() : v.why).c_str());
              ++g_failures;
            } else if (v.generation >= newest) {
              std::printf("  %-34s FAIL: served corrupted generation %llu\n",
                          "on-disk rot fallback",
                          static_cast<unsigned long long>(v.generation));
              ++g_failures;
            } else {
              std::printf("  %-34s ok (fell back gen %llu -> %llu, "
                          "recovered %zu pts)\n",
                          "on-disk rot fallback",
                          static_cast<unsigned long long>(newest),
                          static_cast<unsigned long long>(v.generation),
                          v.recovered);
            }
          }
        }
      }
    }

    std::error_code ec;
    std::filesystem::remove_all(base, ec);  // best effort

    if (g_failures != 0) {
      std::printf("crashharness: %d FAILURE(S)\n", g_failures);
      return 1;
    }
    std::printf("crashharness: all scenarios hold — recovery is an exact "
                "prefix, clustered exactly, and failed saves never damage "
                "published generations\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crashharness: error: %s\n", e.what());
    return 1;
  }
}
