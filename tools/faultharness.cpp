// faultharness: scripted fault-scenario matrix for the fault-tolerant
// µDBSCAN-D driver (docs/FAULT_MODEL.md §6). Runs, against one dataset:
//
//   * a fault-free baseline through the same FT driver;
//   * a single-rank crash injected at each pipeline phase (partition, halo,
//     local, merge);
//   * a drop-rate sweep over the reliable (ack/retry) transport;
//   * a corrupted-payload scenario (checksum-detected, retransmitted).
//
// Every scenario reports the recovery outcome (attempts, crashed ranks and
// phases, full-restart or checkpointed recovery), the virtual-time overhead
// versus the baseline, and whether the clustering stayed *exact* (same core
// set, core partition, and noise set as the fault-free run). Exit status is
// non-zero if any scenario fails to recover exactly.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "data/generators.hpp"
#include "dist/ft_mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace {

struct ScenarioRow {
  std::string name;
  std::string outcome;  // "exact", "INEXACT", or "ERROR: ..."
  udb::FtStats stats;
  bool ok = false;
};

std::string phases_of(const udb::FtStats& st) {
  if (st.crashed_ranks.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < st.crashed_ranks.size(); ++i) {
    if (i) out += ",";
    out += "r" + std::to_string(st.crashed_ranks[i]) + "@" +
           st.crash_phases[i];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    udb::Cli cli(argc, argv);
    const std::string dataset = cli.get_string("dataset", "blobs");
    const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 2000));
    const int ranks = static_cast<int>(cli.get_int("ranks", 4));
    const int crash_rank = static_cast<int>(cli.get_int("crash-rank", 1));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const bool quick = cli.get_bool("quick", false);

    udb::DbscanParams params;
    udb::Dataset ds = [&] {
      if (dataset == "blobs") {
        params.eps = cli.get_double("eps", 2.5);
        params.min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
        return udb::gen_blobs(n, 2, 6, 100.0, 1.5, 0.05, seed);
      }
      if (dataset == "moons") {
        params.eps = cli.get_double("eps", 0.08);
        params.min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
        return udb::gen_two_moons(n, 0.04, seed);
      }
      if (dataset == "galaxy") {
        params.eps = cli.get_double("eps", 4.0);
        params.min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 8));
        return udb::gen_galaxy(n, {}, seed);
      }
      throw std::invalid_argument("faultharness: unknown --dataset '" +
                                  dataset + "' (blobs|moons|galaxy)");
    }();
    cli.check_unused();
    if (ranks < 2)
      throw std::invalid_argument("faultharness: --ranks must be >= 2");
    if (crash_rank < 0 || crash_rank >= ranks)
      throw std::invalid_argument("faultharness: --crash-rank out of range");

    std::printf("faultharness: dataset=%s n=%zu dim=%zu ranks=%d eps=%g "
                "minpts=%u seed=%llu\n\n",
                dataset.c_str(), ds.size(), ds.dim(), ranks, params.eps,
                params.min_pts, static_cast<unsigned long long>(seed));

    // ---- fault-free baseline (the exactness reference) -------------------
    udb::FtConfig base_cfg;
    udb::FtStats base_stats;
    const udb::ClusteringResult reference =
        udb::mudbscan_d_ft(ds, params, ranks, base_cfg, &base_stats);
    const double base_vt = base_stats.vtime_final_attempt;
    std::printf("baseline: clusters=%zu core=%zu noise=%zu vtime=%.4fs\n\n",
                reference.num_clusters(), reference.num_core(),
                reference.num_noise(), base_vt);

    std::vector<ScenarioRow> rows;
    const auto run_scenario = [&](const std::string& name,
                                  const udb::mpi::FaultPlan& plan) {
      ScenarioRow row;
      row.name = name;
      udb::FtConfig cfg;
      cfg.plan = plan;
      try {
        const udb::ClusteringResult got =
            udb::mudbscan_d_ft(ds, params, ranks, cfg, &row.stats);
        const udb::ExactnessReport rep = udb::compare_exact(reference, got);
        row.ok = rep.exact();
        row.outcome = row.ok ? "exact" : "INEXACT: " + rep.detail;
      } catch (const std::exception& e) {
        row.outcome = std::string("ERROR: ") + e.what();
      }
      rows.push_back(std::move(row));
    };

    // ---- single-rank crash in each phase ---------------------------------
    for (const char* phase :
         {udb::kFtPointPartition, udb::kFtPointHalo, udb::kFtPointLocal,
          udb::kFtPointMerge}) {
      udb::mpi::FaultPlan plan;
      plan.seed = seed;
      udb::mpi::CrashSpec crash;
      crash.rank = crash_rank;
      crash.at_point = phase;
      plan.crashes.push_back(crash);
      run_scenario(std::string("crash@") + phase, plan);
    }

    // ---- drop-rate sweep over reliable transport -------------------------
    for (double rate : quick ? std::vector<double>{0.05}
                             : std::vector<double>{0.01, 0.05, 0.10, 0.20}) {
      udb::mpi::FaultPlan plan;
      plan.seed = seed;
      plan.reliable = true;
      plan.msg.drop_rate = rate;
      char name[48];
      std::snprintf(name, sizeof name, "drop=%.0f%% (reliable)", rate * 100);
      run_scenario(name, plan);
    }

    // ---- corrupted payloads (includes the halo alltoallv traffic) --------
    {
      udb::mpi::FaultPlan plan;
      plan.seed = seed;
      plan.reliable = true;
      plan.msg.corrupt_rate = quick ? 0.05 : 0.10;
      run_scenario("corrupt payload (reliable)", plan);
    }

    // ---- combined stress: crash + lossy transport ------------------------
    if (!quick) {
      udb::mpi::FaultPlan plan;
      plan.seed = seed;
      plan.reliable = true;
      plan.msg.drop_rate = 0.05;
      plan.msg.corrupt_rate = 0.02;
      udb::mpi::CrashSpec crash;
      crash.rank = crash_rank;
      crash.at_point = udb::kFtPointLocal;
      plan.crashes.push_back(crash);
      run_scenario("crash@local + drop+corrupt", plan);
    }

    // ---- report ----------------------------------------------------------
    std::printf("%-28s %-8s %-9s %-20s %-8s %-9s %-10s %s\n", "scenario",
                "attempts", "restart", "crashes", "retries", "vtime",
                "overhead", "outcome");
    bool all_ok = true;
    for (const ScenarioRow& row : rows) {
      const udb::FtStats& st = row.stats;
      const double overhead =
          base_vt > 0 && row.ok ? st.vtime_total / base_vt : 0.0;
      std::printf("%-28s %-8d %-9s %-20s %-8llu %-9.4f %-10s %s\n",
                  row.name.c_str(), st.attempts,
                  st.full_restarts ? "full" : "ckpt",
                  phases_of(st).c_str(),
                  static_cast<unsigned long long>(st.faults.retries),
                  st.vtime_total,
                  row.ok ? (std::to_string(overhead).substr(0, 5) + "x").c_str()
                         : "-",
                  row.outcome.c_str());
      all_ok = all_ok && row.ok;
    }
    std::printf("\n%s\n", all_ok ? "all scenarios recovered exactly"
                                 : "SOME SCENARIOS FAILED");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultharness: %s\n", e.what());
    return 2;
  }
}
