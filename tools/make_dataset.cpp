// make_dataset — generate the synthetic datasets this repository uses, to
// CSV or UDB1 binary, for use with udbscan_cli or external tools.
//
//   $ make_dataset --name MPAGD --scale 0.5 --out mpagd.csv
//   $ make_dataset --gen blobs --n 100000 --dim 3 --out blobs.bin
//
// Either --name <paper dataset analog> (see data/named.hpp for the registry)
// or --gen <generator> with generator-specific flags.

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "data/generators.hpp"
#include "data/named.hpp"

using namespace udb;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string name = cli.get_string("name", "");
    const std::string gen = cli.get_string("gen", "");
    const std::string out_path = cli.get_string("out", "");
    const double scale = cli.get_positive_double("scale", 1.0);
    // n*dim doubles must fit in memory-sized arithmetic: cap each factor so
    // the product can't overflow size_t (and a typo like --n -5 or
    // --n 1e18 dies with a one-line error instead of an OOM or a wrap).
    const auto n = static_cast<std::size_t>(
        cli.get_int_in_range("n", 10000, 0, std::int64_t{1} << 40));
    const auto dim = static_cast<std::size_t>(
        cli.get_int_in_range("dim", 3, 1, 1 << 16));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    if (!name.empty() && !gen.empty())
      throw std::invalid_argument(
          "--name and --gen are mutually exclusive; pick one");

    Dataset data = Dataset::empty(1);
    if (!name.empty()) {
      NamedDataset nd = make_named_dataset(name, scale, seed);
      data = std::move(nd.data);
      std::printf("%s: suggested eps = %g, MinPts = %u\n", nd.name.c_str(),
                  nd.params.eps, nd.params.min_pts);
    } else if (gen == "blobs") {
      const auto k =
          static_cast<std::size_t>(cli.get_int_at_least("k", 5, 1));
      const double stddev = cli.get_positive_double("stddev", 3.0);
      const double noise = cli.get_double("noise", 0.1);
      if (noise < 0.0 || noise > 1.0)
        throw std::invalid_argument("--noise must be in [0, 1]");
      data = gen_blobs(n, dim, k, 100.0, stddev, noise, seed);
    } else if (gen == "galaxy") {
      GalaxyConfig cfg;
      data = gen_galaxy(n, cfg, seed);
    } else if (gen == "roadnet") {
      RoadnetConfig cfg;
      data = gen_roadnet(n, cfg, seed);
    } else if (gen == "uniform") {
      data = gen_uniform(n, dim, 0.0, 100.0, seed);
    } else if (gen == "moons") {
      data = gen_two_moons(n, 0.05, seed);
    } else if (gen == "rings") {
      data = gen_rings(n, 3, 0.04, seed);
    } else if (gen == "highdim") {
      HighDimConfig cfg;
      cfg.dim = dim;
      data = gen_highdim(n, cfg, seed);
    } else {
      std::fprintf(stderr,
                   "usage: make_dataset (--name <analog> | --gen blobs|galaxy|"
                   "roadnet|uniform|moons|rings|highdim) --out file.{csv,bin} "
                   "[--n N] [--dim D] [--scale S] [--seed S]\n");
      return 2;
    }
    cli.check_unused();

    if (out_path.empty())
      throw std::invalid_argument("--out is required");
    if (ends_with(out_path, ".bin"))
      write_binary(data, out_path);
    else
      write_csv(data, out_path);
    std::printf("wrote %zu points x %zu dims to %s\n", data.size(), data.dim(),
                out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "make_dataset: error: %s\n", e.what());
    return 1;
  }
}
