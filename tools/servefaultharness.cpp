// servefaultharness: scripted fault-scenario matrix for the serving tier
// (docs/SERVING.md failure-mode matrix). In one process it builds a model,
// starts replica QueryServers over it, installs a seeded NetFaultPlan on the
// frame transport (serve/netfault.hpp), and drives classify traffic through
// the RetryingClient. Scenarios:
//
//   * baseline          — fault-free; every answer must match offline exactly
//   * corrupt           — bit-flips on the wire; the v2 CRC must catch every
//                         one before a wrong answer can surface
//   * drop              — connections severed mid-exchange; reconnect+retry
//   * truncate          — short writes the sender believes succeeded
//   * mixed             — all of the above plus injected delays
//   * kill-replica      — replica 0 stopped mid-batch; failover must lose
//                         nothing (zero failed requests). Runs traced: the
//                         client and both replicas record spans into one
//                         tracer (replicas as trace pids 1/2), and the
//                         harness asserts a retried request's client.attempt
//                         spans and the server's phase spans share one trace
//                         id across the failover. --trace-out writes the
//                         merged Chrome trace for chrome://tracing.
//   * overload          — in-flight budget 1 under concurrent clients; sheds
//                         are retried until every request succeeds
//
// Scenarios also scrape the TELEMETRY admin RPC mid-run and cross-check the
// live counters against the injected fault plan: corrupt asserts the server
// counted corrupted frames (and no more than were injected), overload
// asserts the scraped shed counter matches the server's registry.
//
// The invariant checked everywhere: a request either returns the exact
// offline answer or fails with a clean retryable status after exhausting its
// attempts. A single wrong answer — or a hang, bounded by per-attempt socket
// timeouts — fails the harness. Exit 0 iff every scenario holds.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model.hpp"
#include "serve/netfault.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

using namespace udb;

namespace {

struct ScenarioRow {
  std::string name;
  std::size_t requests = 0;
  std::size_t wrong = 0;      // answered OK but differed from offline
  std::size_t failed = 0;     // gave up after retries (clean error)
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  serve::NetFaultCounts faults;
  bool ok = false;
};

struct Fixture {
  std::shared_ptr<const serve::ClusterModel> model;
  std::vector<double> queries;        // flat, dim per model
  std::vector<serve::Classify> oracle;  // offline answers, index-aligned
};

Fixture build_fixture(std::size_t n, std::size_t q, std::uint64_t seed) {
  serve::ModelSnapshot snap;
  snap.data = gen_blobs(n, 2, 5, 25.0, 1.0, 0.1, seed);
  snap.params = {1.2, 5};
  snap.result = mu_dbscan(snap.data, snap.params);
  auto model = serve::ClusterModel::build(std::move(snap));
  if (!model.ok())
    throw std::runtime_error("model build failed: " +
                             model.status().to_string());

  Fixture fx;
  fx.model = *model;
  // Half verbatim dataset points (exact-match path), half jittered copies —
  // the same mix the serving tests use, deterministic in the seed.
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < q; ++i) {
    const auto p = fx.model->dataset().point(
        static_cast<PointId>(i % fx.model->size()));
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double jit =
        i % 2 == 0 ? 0.0
                   : (static_cast<double>(x >> 11) / 9007199254740992.0 - 0.5);
    fx.queries.push_back(p[0] + jit);
    fx.queries.push_back(p[1] + jit);
  }
  auto oracle = fx.model->classify_batch(fx.queries, q);
  if (!oracle.ok())
    throw std::runtime_error("offline classify failed: " +
                             oracle.status().to_string());
  fx.oracle = std::move(*oracle);
  return fx;
}

bool same_answer(const serve::Classify& a, const serve::Classify& b) {
  return a.label == b.label && a.kind == b.kind &&
         a.exact_match == b.exact_match && a.would_be_core == b.would_be_core &&
         a.neighbors == b.neighbors;
}

// Drives every fixture query, one request each, through the client and
// scores the outcome against the oracle.
void drive(const Fixture& fx, serve::RetryingClient& client, ScenarioRow& row,
           std::size_t begin = 0, std::size_t end = SIZE_MAX) {
  const std::size_t q = fx.oracle.size();
  if (end > q) end = q;
  for (std::size_t i = begin; i < end; ++i) {
    ++row.requests;
    const std::span<const double> point(fx.queries.data() + 2 * i, 2);
    auto r = client.classify(point, 2);
    if (!r.ok()) {
      if (!serve::retryable_status(r.status().code())) ++row.wrong;
      else ++row.failed;
      continue;
    }
    if (r->size() != 1 || !same_answer((*r)[0], fx.oracle[i])) ++row.wrong;
  }
}

void finish(ScenarioRow& row, const obs::MetricsRegistry& metrics) {
  const auto snap = metrics.snapshot();
  row.retries = snap.counter(obs::Counter::kServeClientRetries);
  row.failovers = snap.counter(obs::Counter::kServeClientFailovers);
  row.faults = serve::net_fault_counts();
  row.ok = row.wrong == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::size_t n =
        static_cast<std::size_t>(cli.get_int_at_least("n", 600, 50));
    const std::size_t q =
        static_cast<std::size_t>(cli.get_int_at_least("queries", 40, 1));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const bool quick = cli.get_bool("quick", false);
    const std::string trace_out = cli.get_string("trace-out", "");
    cli.check_unused();

    const Fixture fx = build_fixture(n, q, seed);
    serve::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff_seconds = 0.002;
    policy.max_backoff_seconds = 0.05;
    policy.timeout_seconds = 2.0;
    policy.jitter_seed = seed;

    std::vector<ScenarioRow> rows;

    // ---- wire-fault sweep: one server, plan installed process-wide --------
    struct WireScenario {
      const char* name;
      serve::NetOpFaults read, write;
    };
    const std::vector<WireScenario> wire = {
        {"baseline", {}, {}},
        {"corrupt", {0.0, 0.10, 0.0, 0.0, 0.0}, {0.0, 0.10, 0.0, 0.0, 0.0}},
        {"drop", {0.05, 0.0, 0.0, 0.0, 0.0}, {0.05, 0.0, 0.0, 0.0, 0.0}},
        {"truncate", {0.0, 0.0, 0.05, 0.0, 0.0}, {0.0, 0.0, 0.05, 0.0, 0.0}},
        {"mixed",
         {0.03, 0.05, 0.03, 0.10, 1e-3},
         {0.03, 0.05, 0.03, 0.10, 1e-3}},
    };
    for (const WireScenario& sc : wire) {
      if (quick && std::string(sc.name) == "mixed") continue;
      serve::QueryServer server(fx.model, {});
      if (Status st = server.start(); !st.ok())
        throw std::runtime_error(st.to_string());

      serve::NetFaultPlan plan;
      plan.seed = seed;
      plan.read = sc.read;
      plan.write = sc.write;
      serve::reset_net_fault_state();
      serve::install_net_fault_plan(&plan);

      obs::MetricsRegistry metrics;
      serve::RetryingClient client({server.port()}, policy, &metrics);
      ScenarioRow row;
      row.name = sc.name;
      drive(fx, client, row);
      // Mid-scenario telemetry cross-check, scraped through the same faulty
      // wire (the retry loop absorbs a corrupted scrape): the server must
      // have counted corrupted frames, and no more than the plan injected.
      if (std::string(sc.name) == "corrupt") {
        auto tel = client.telemetry();
        const auto injected = serve::net_fault_counts().corrupted;
        if (!tel.ok()) {
          std::printf("corrupt: telemetry scrape failed: %s\n",
                      tel.status().to_string().c_str());
          row.wrong += 1;  // counts as a scenario failure
        } else if (tel->corrupt_frames_total == 0 ||
                   tel->corrupt_frames_total > injected) {
          std::printf("corrupt: telemetry corrupt_frames_total %llu outside "
                      "(0, injected %llu]\n",
                      static_cast<unsigned long long>(
                          tel->corrupt_frames_total),
                      static_cast<unsigned long long>(injected));
          row.wrong += 1;
        } else {
          std::printf("corrupt: telemetry counted %llu corrupt frames of "
                      "%llu injected\n",
                      static_cast<unsigned long long>(
                          tel->corrupt_frames_total),
                      static_cast<unsigned long long>(injected));
        }
      }
      serve::install_net_fault_plan(nullptr);
      finish(row, metrics);
      if (std::string(sc.name) == "baseline" && row.failed != 0) row.ok = false;
      rows.push_back(row);
      server.stop();
    }

    // ---- kill-replica-mid-batch: failover must lose nothing ---------------
    // Runs traced end to end: one tracer shared by the client (trace pid 0)
    // and both replicas (pids 1 and 2), so the merged Chrome trace shows a
    // single classify request's client.attempt spans and the server-side
    // phase spans under one trace id even as the request hops replicas.
    {
      obs::Tracer tracer;
      serve::ServerConfig cfg_a, cfg_b;
      cfg_a.tracer = &tracer;
      cfg_a.trace_pid = 1;
      cfg_b.tracer = &tracer;
      cfg_b.trace_pid = 2;
      serve::QueryServer a(fx.model, cfg_a);
      serve::QueryServer b(fx.model, cfg_b);
      if (!a.start().ok() || !b.start().ok())
        throw std::runtime_error("replica start failed");
      obs::MetricsRegistry metrics;
      serve::RetryingClient client({a.port(), b.port()}, policy, &metrics,
                                   &tracer);
      serve::reset_net_fault_state();

      ScenarioRow row;
      row.name = "kill-replica";
      drive(fx, client, row, 0, q / 4);
      a.stop();  // replica 0 dies mid-batch; the rest fail over to b
      drive(fx, client, row, q / 4);
      finish(row, metrics);
      if (row.failed != 0) row.ok = false;  // zero lost requests, not just
      b.stop();                             // zero wrong answers

      // Trace correlation asserts (server threads quiesced by stop()):
      //  (a) some request's client.attempt span shares its trace id with a
      //      serve.* span recorded by a replica thread (pid 1 or 2), and
      //  (b) the request that straddled the kill shows the retry/failover:
      //      >= 2 client.attempt spans AND a server-side span on replica b,
      //      all under one trace id.
      const std::vector<obs::TraceEvent> events = tracer.events();
      bool correlated = false, failover_traced = false;
      for (const obs::TraceEvent& e : events) {
        if (e.trace_id == 0 ||
            std::string_view(e.name) != "client.attempt")
          continue;
        std::size_t attempts = 0;
        bool on_server = false, on_b = false;
        for (const obs::TraceEvent& o : events) {
          if (o.trace_id != e.trace_id) continue;
          if (std::string_view(o.name) == "client.attempt") ++attempts;
          if (o.pid == 1 || o.pid == 2) {
            on_server = true;
            if (o.pid == 2) on_b = true;
          }
        }
        correlated = correlated || on_server;
        failover_traced = failover_traced || (attempts >= 2 && on_b);
      }
      if (!correlated || !failover_traced) {
        std::printf("kill-replica: trace correlation failed (correlated=%d "
                    "failover_traced=%d, %zu events)\n",
                    correlated ? 1 : 0, failover_traced ? 1 : 0,
                    events.size());
        row.ok = false;
      } else {
        std::printf("kill-replica: merged trace correlates client and "
                    "replica spans across failover (%zu events)\n",
                    events.size());
      }
      if (!trace_out.empty()) {
        if (Status st = tracer.write_chrome_trace(trace_out); !st.ok())
          throw std::runtime_error(st.to_string());
        std::printf("kill-replica: merged Chrome trace written to %s\n",
                    trace_out.c_str());
      }
      rows.push_back(row);
    }

    // ---- overload: in-flight budget 1, concurrent clients, all must win ---
    {
      serve::ServerConfig cfg;
      cfg.max_inflight = 1;
      serve::QueryServer server(fx.model, cfg);
      if (!server.start().ok())
        throw std::runtime_error("overload server start failed");
      serve::reset_net_fault_state();

      obs::MetricsRegistry metrics;
      ScenarioRow row;
      row.name = "overload";
      // Tile the fixture batch so one classify request takes long enough for
      // concurrent in-flight windows to actually collide with the budget —
      // independent of how small --queries is, target a fixed per-request
      // point count (the telemetry cross-check below requires at least one
      // real shed, so a too-cheap batch would make the scenario vacuous).
      const std::size_t target_points = quick ? 4000 : 20000;
      const std::size_t per_batch = fx.queries.size() / 2;
      const std::size_t tiles =
          std::max<std::size_t>(quick ? 8 : 25,
                                (target_points + per_batch - 1) / per_batch);
      std::vector<double> big;
      std::vector<serve::Classify> big_oracle;
      for (std::size_t rep = 0; rep < tiles; ++rep) {
        big.insert(big.end(), fx.queries.begin(), fx.queries.end());
        big_oracle.insert(big_oracle.end(), fx.oracle.begin(),
                          fx.oracle.end());
      }
      std::vector<ScenarioRow> per_thread(4);
      std::vector<std::thread> threads;
      const int reps = quick ? 4 : 10;
      for (std::size_t t = 0; t < per_thread.size(); ++t)
        threads.emplace_back([&, t] {
          serve::RetryPolicy p = policy;
          p.max_attempts = 20;  // sheds are cheap; insist on success
          p.jitter_seed = seed + t;
          serve::RetryingClient client({server.port()}, p, &metrics);
          // Whole-batch requests so in-flight windows actually overlap and
          // the budget of 1 sheds; every answer still checked exactly.
          for (int rep = 0; rep < reps; ++rep) {
            ScenarioRow& pt = per_thread[t];
            ++pt.requests;
            auto r = client.classify(big, 2);
            if (!r.ok()) {
              if (!serve::retryable_status(r.status().code())) ++pt.wrong;
              else ++pt.failed;
              continue;
            }
            if (r->size() != big_oracle.size()) {
              ++pt.wrong;
              continue;
            }
            for (std::size_t i = 0; i < big_oracle.size(); ++i)
              if (!same_answer((*r)[i], big_oracle[i])) {
                ++pt.wrong;
                break;
              }
          }
        });
      for (auto& t : threads) t.join();
      for (const ScenarioRow& pt : per_thread) {
        row.requests += pt.requests;
        row.wrong += pt.wrong;
        row.failed += pt.failed;
      }
      finish(row, metrics);
      if (row.failed != 0) row.ok = false;
      const auto shed =
          server.metrics().snapshot().counter(obs::Counter::kServeShedLoad);
      std::printf("overload: server shed %llu requests\n",
                  static_cast<unsigned long long>(shed));
      // Telemetry cross-check over the wire: the scraped shed counter must
      // be live (nonzero — budget 1 under 4 clients must shed) and agree
      // with the server's own registry now that traffic has drained.
      {
        serve::RetryingClient scraper({server.port()}, policy, nullptr);
        auto tel = scraper.telemetry();
        if (!tel.ok() || tel->shed_load_total == 0 ||
            tel->shed_load_total != shed) {
          std::printf("overload: telemetry shed_load_total %llu does not "
                      "match registry %llu (or scrape failed)\n",
                      tel.ok() ? static_cast<unsigned long long>(
                                     tel->shed_load_total)
                               : 0ull,
                      static_cast<unsigned long long>(shed));
          row.ok = false;
        } else {
          std::printf("overload: telemetry matches registry (%llu sheds)\n",
                      static_cast<unsigned long long>(shed));
        }
      }
      server.stop();
      rows.push_back(row);
    }

    // ---- report -----------------------------------------------------------
    std::printf(
        "%-14s %9s %6s %7s %8s %10s %22s\n", "scenario", "requests", "wrong",
        "failed", "retries", "failovers", "faults(drop/corr/trunc)");
    bool all_ok = true;
    for (const ScenarioRow& r : rows) {
      std::printf("%-14s %9zu %6zu %7zu %8llu %10llu %8llu/%llu/%llu  %s\n",
                  r.name.c_str(), r.requests, r.wrong, r.failed,
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.failovers),
                  static_cast<unsigned long long>(r.faults.dropped),
                  static_cast<unsigned long long>(r.faults.corrupted),
                  static_cast<unsigned long long>(r.faults.truncated),
                  r.ok ? "ok" : "FAIL");
      all_ok = all_ok && r.ok;
    }
    std::printf("servefaultharness: %s\n", all_ok ? "PASS" : "FAIL");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "servefaultharness: error: %s\n", e.what());
    return 1;
  }
}
