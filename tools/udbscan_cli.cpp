// udbscan — command-line clustering tool over the library's public API.
//
//   $ udbscan --input points.csv --eps 1.5 --minpts 5 --out labels.csv
//   $ udbscan --input points.bin --algo rdbscan --eps 2 --minpts 4
//   $ udbscan --input points.csv --algo mudbscan-d --ranks 8 ...
//
// Input: CSV (one point per line) or the UDB1 binary format (autodetected by
// extension .bin). Output: one line per point, "label,is_core" (label -1 is
// noise), preceded by a '#' header. Prints a summary to stdout.
//
// Algorithms: mudbscan (default), rdbscan, gdbscan, griddbscan, brute,
// mudbscan-d (simulated ranks, see --ranks).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "baselines/brute_dbscan.hpp"
#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/timer.hpp"
#include "core/kdist.hpp"
#include "core/mudbscan.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string input = cli.get_string("input", "");
    const std::string algo = cli.get_string("algo", "mudbscan");
    const std::string out_path = cli.get_string("out", "");
    const double eps = cli.get_double("eps", 1.0);
    const std::int64_t min_pts_raw = cli.get_int("minpts", 5);
    const auto min_pts = static_cast<std::uint32_t>(min_pts_raw);
    const int ranks = static_cast<int>(cli.get_int("ranks", 8));
    const std::int64_t threads_raw = cli.get_int("threads", 1);
    const bool suggest = cli.get_bool("suggest-eps", false);
    cli.check_unused();

    if (!(eps > 0.0) || !std::isfinite(eps))
      throw std::invalid_argument("--eps must be a finite value > 0 (got " +
                                  std::to_string(eps) + ")");
    if (min_pts_raw < 1 || min_pts_raw > 0xFFFFFFFFll)
      throw std::invalid_argument("--minpts must be >= 1");
    if (ranks < 1)
      throw std::invalid_argument("--ranks must be >= 1");
    if (threads_raw < 1 || threads_raw > 1024)
      throw std::invalid_argument("--threads must be in [1, 1024]");
    if (threads_raw > 1 && algo != "mudbscan")
      throw std::invalid_argument(
          "--threads > 1 is only supported by --algo mudbscan (got --algo " +
          algo + ")");

    if (input.empty()) {
      std::fprintf(stderr,
                   "usage: udbscan --input points.csv [--algo mudbscan|"
                   "rdbscan|gdbscan|griddbscan|brute|mudbscan-d] "
                   "[--eps E] [--minpts M] [--threads T] [--ranks P] "
                   "[--out labels.csv]\n");
      return 2;
    }

    const Dataset data =
        ends_with(input, ".bin") ? read_binary(input) : read_csv(input);
    const DbscanParams params{eps, min_pts};
    std::printf("loaded %zu points, %zu dims from %s\n", data.size(),
                data.dim(), input.c_str());

    if (suggest) {
      const double rec = suggest_eps(data, min_pts > 1 ? min_pts - 1 : 1);
      std::printf("k-dist knee suggests eps ~= %g for MinPts = %u\n", rec,
                  min_pts);
      return 0;
    }

    WallTimer timer;
    ClusteringResult result;
    MuDbscanStats mu_stats;
    if (algo == "mudbscan") {
      MuDbscanConfig cfg;
      cfg.num_threads = static_cast<unsigned>(threads_raw);
      result = mu_dbscan(data, params, &mu_stats, cfg);
    } else if (algo == "rdbscan") {
      result = r_dbscan(data, params);
    } else if (algo == "gdbscan") {
      result = g_dbscan(data, params);
    } else if (algo == "griddbscan") {
      result = grid_dbscan(data, params);
    } else if (algo == "brute") {
      result = brute_dbscan(data, params);
    } else if (algo == "mudbscan-d") {
      result = mudbscan_d(data, params, ranks);
    } else {
      throw std::invalid_argument("unknown --algo " + algo);
    }
    const double elapsed = timer.seconds();

    std::printf("%s: %.3f s — %zu clusters, %zu core, %zu border, %zu noise\n",
                algo.c_str(), elapsed, result.num_clusters(),
                result.num_core(), result.num_border(), result.num_noise());
    if (algo == "mudbscan") {
      std::printf("micro-clusters: %zu, queries saved: %.1f%%\n",
                  mu_stats.num_mcs,
                  100.0 * mu_stats.query_save_fraction(data.size()));
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot open " + out_path);
      out << "# label,is_core (label -1 = noise)\n";
      for (std::size_t i = 0; i < result.size(); ++i)
        out << result.label[i] << ','
            << static_cast<int>(result.is_core[i]) << '\n';
      std::printf("labels written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udbscan: error: %s\n", e.what());
    return 1;
  }
}
