// udbscan — command-line clustering tool over the library's public API.
//
//   $ udbscan --input points.csv --eps 1.5 --minpts 5 --out labels.csv
//   $ udbscan --input points.bin --algo rdbscan --eps 2 --minpts 4
//   $ udbscan --input points.csv --algo mudbscan-d --ranks 8 ...
//   $ udbscan --input big.bin --deadline-ms 60000 --mem-budget-mb 2048 \
//             --on-budget degrade
//
// Input: CSV (one point per line) or the UDB1 binary format (autodetected by
// extension .bin). Output: one line per point, "label,is_core" (label -1 is
// noise), preceded by a '#' header. Prints a summary to stdout.
//
// Algorithms: mudbscan (default), rdbscan, gdbscan, griddbscan, brute,
// mudbscan-d (simulated ranks, see --ranks).
//
// Run governance (docs/ROBUSTNESS.md): --deadline-ms and --mem-budget-mb arm
// a RunGuard; for the guarded algorithms (mudbscan, mudbscan-d) a tripped
// limit either fails cleanly (--on-budget fail, the default; exit 3) or falls
// back to sampled approximate DBSCAN (--on-budget degrade, the result is
// flagged APPROXIMATE in the summary and the label file header). Ctrl-C trips
// the cancellation token: the run stops at the next cooperative checkpoint
// and exits with code 4 (a second Ctrl-C force-kills). --quarantine skips
// malformed input rows (reported) instead of failing on the first one.
//
// Observability (docs/OBSERVABILITY.md): --trace-out writes a Chrome
// trace_event JSON of the run's spans (load into Perfetto), --metrics-out
// writes the structured run report (query-avoidance ledger, µR-tree
// internals, histograms, per-rank comm stats), --log-level raises/lowers the
// stderr structured-log threshold (default warn).
//
// Serving handoff (docs/SERVING.md): --snapshot-out persists the fitted
// model (dataset + params + exact labels/core flags + run report) as a
// checksummed UDBM snapshot that udbscan_serve / --snapshot-in can reload
// without re-clustering. --snapshot-in answers classify queries offline from
// such a snapshot:
//
//   $ udbscan --input pts.bin --eps 2 --minpts 5 --snapshot-out model.udbm
//   $ udbscan --snapshot-in model.udbm --classify queries.csv --out ans.csv
//
// The classify output format ("label,kind,exact_match,would_be_core,
// neighbors") is byte-identical to udbscan_query's, so CI diffs served
// answers against this offline recompute.
//
// Exit codes: 0 ok (including a degraded/approximate result), 1 usage or
// input error, 2 missing required flags, 3 deadline/budget exceeded under
// --on-budget fail, 4 cancelled.

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "baselines/brute_dbscan.hpp"
#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/runguard.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "common/vfs.hpp"
#include "core/guarded_run.hpp"
#include "core/kdist.hpp"
#include "core/mudbscan.hpp"
#include "dist/mudbscan_d.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/classify_csv.hpp"
#include "serve/model.hpp"
#include "serve/snapshot.hpp"

using namespace udb;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int exit_code_for(const Status& s) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return 3;
    case StatusCode::kCancelled:
      return 4;
    default:
      return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Owned here (not in the guarded run) so the SIGINT handler can reach it
  // for the whole lifetime of the process.
  static RunGuard guard;
  try {
    Cli cli(argc, argv);
    const std::string input = cli.get_string("input", "");
    const std::string algo = cli.get_string("algo", "mudbscan");
    const std::string out_path = cli.get_string("out", "");
    const double eps = cli.get_positive_double("eps", 1.0);
    const auto min_pts = static_cast<std::uint32_t>(
        cli.get_int_in_range("minpts", 5, 1, 0xFFFFFFFFll));
    const int ranks =
        static_cast<int>(cli.get_int_in_range("ranks", 8, 1, 4096));
    const std::int64_t threads_raw =
        cli.get_int_in_range("threads", 1, 1, 1024);
    const bool suggest = cli.get_bool("suggest-eps", false);
    const bool quarantine = cli.get_bool("quarantine", false);
    const std::int64_t deadline_ms =
        cli.get_int_at_least("deadline-ms", 0, 0);
    const std::int64_t budget_mb =
        cli.get_int_at_least("mem-budget-mb", 0, 0);
    const std::string on_budget_str = cli.get_string("on-budget", "fail");
    const std::string trace_out = cli.get_string("trace-out", "");
    const std::string metrics_out = cli.get_string("metrics-out", "");
    const std::string log_level_str = cli.get_string("log-level", "");
    const std::string snapshot_out = cli.get_string("snapshot-out", "");
    const std::string snapshot_in = cli.get_string("snapshot-in", "");
    const std::string classify_path = cli.get_string("classify", "");
    cli.check_unused();

    if (!log_level_str.empty()) {
      auto lvl = obs::parse_log_level(log_level_str);
      if (!lvl.ok())
        throw std::invalid_argument("--log-level: " +
                                    lvl.status().to_string());
      obs::set_log_level(lvl.value());
    }

    // ---- snapshot serving path: no clustering, answers come from the
    // persisted model (docs/SERVING.md).
    if (!snapshot_in.empty()) {
      if (!snapshot_out.empty())
        throw std::invalid_argument(
            "--snapshot-in and --snapshot-out are mutually exclusive");
      auto loaded_snap = serve::load_model(snapshot_in);
      if (!loaded_snap.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n",
                     loaded_snap.status().to_string().c_str());
        return 1;
      }
      auto model = serve::ClusterModel::build(std::move(*loaded_snap));
      if (!model.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n",
                     model.status().to_string().c_str());
        return 1;
      }
      const serve::ClusterModel& m = **model;
      std::printf(
          "model %s: %zu points, %zu dims, eps %g, minpts %u, %zu clusters\n",
          snapshot_in.c_str(), m.size(), m.dim(), m.params().eps,
          m.params().min_pts, m.num_clusters());
      if (classify_path.empty()) return 0;

      ReadOptions qopts;
      qopts.quarantine = quarantine;
      ReadReport qrep;
      auto queries = ends_with(classify_path, ".bin")
                         ? load_binary(classify_path, qopts, &qrep)
                         : load_csv(classify_path, qopts, &qrep);
      if (!queries.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n",
                     queries.status().to_string().c_str());
        return 1;
      }
      if (queries->dim() != m.dim())
        throw std::invalid_argument(
            "--classify: query dim " + std::to_string(queries->dim()) +
            " does not match model dim " + std::to_string(m.dim()));
      auto answers = m.classify_batch(queries->raw(), queries->size());
      if (!answers.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n",
                     answers.status().to_string().c_str());
        return 1;
      }
      std::size_t exact = 0;
      for (const serve::Classify& c : *answers) exact += c.exact_match ? 1 : 0;
      std::printf("classified %zu queries (%zu exact matches) without "
                  "re-clustering\n",
                  answers->size(), exact);
      if (!out_path.empty()) {
        std::ostringstream out;
        out << serve::kClassifyCsvHeader << '\n';
        for (const serve::Classify& c : *answers)
          out << serve::classify_csv_row(c) << '\n';
        Status ws = vfs::write_text_file(out_path, out.str());
        if (!ws.ok()) throw StatusError(std::move(ws));
        std::printf("answers written to %s\n", out_path.c_str());
      }
      return 0;
    }
    if (!classify_path.empty())
      throw std::invalid_argument("--classify requires --snapshot-in");

    if (threads_raw > 1 && algo != "mudbscan")
      throw std::invalid_argument(
          "--threads > 1 is only supported by --algo mudbscan (got --algo " +
          algo + ")");
    OnBudget on_budget = OnBudget::kFail;
    if (on_budget_str == "degrade") {
      on_budget = OnBudget::kDegrade;
    } else if (on_budget_str != "fail") {
      throw std::invalid_argument("--on-budget must be 'fail' or 'degrade'");
    }
    const bool guarded = deadline_ms > 0 || budget_mb > 0;
    if (guarded && algo != "mudbscan" && algo != "mudbscan-d")
      throw std::invalid_argument(
          "--deadline-ms/--mem-budget-mb require --algo mudbscan or "
          "mudbscan-d (got --algo " + algo + ")");

    if (input.empty()) {
      std::fprintf(stderr,
                   "usage: udbscan --input points.csv [--algo mudbscan|"
                   "rdbscan|gdbscan|griddbscan|brute|mudbscan-d] "
                   "[--eps E] [--minpts M] [--threads T] [--ranks P] "
                   "[--deadline-ms MS] [--mem-budget-mb MB] "
                   "[--on-budget fail|degrade] [--quarantine] "
                   "[--trace-out trace.json] [--metrics-out report.json] "
                   "[--log-level debug|info|warn|error|off] "
                   "[--snapshot-out model.udbm] [--out labels.csv]\n"
                   "       udbscan --snapshot-in model.udbm "
                   "[--classify queries.csv --out answers.csv]\n");
      return 2;
    }

    ReadOptions ropts;
    ropts.quarantine = quarantine;
    ReadReport rrep;
    auto loaded = ends_with(input, ".bin") ? load_binary(input, ropts, &rrep)
                                           : load_csv(input, ropts, &rrep);
    if (!loaded.ok()) {
      std::fprintf(stderr, "udbscan: error: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    const Dataset data = std::move(loaded).value();
    const DbscanParams params{eps, min_pts};
    std::printf("loaded %zu points, %zu dims from %s\n", data.size(),
                data.dim(), input.c_str());
    if (rrep.rows_skipped > 0)
      std::printf("quarantined %zu malformed rows\n", rrep.rows_skipped);

    if (suggest) {
      const double rec = suggest_eps(data, min_pts > 1 ? min_pts - 1 : 1);
      std::printf("k-dist knee suggests eps ~= %g for MinPts = %u\n", rec,
                  min_pts);
      return 0;
    }

    // Ctrl-C trips the cancel token; the run stops at the next cooperative
    // checkpoint. Installed even without limits so every guarded run is
    // interruptible.
    install_sigint_cancel(&guard);

    // Observability sinks: spans go to `tracer` (null = fully inert), and
    // the run report is assembled in `report` as the run unfolds.
    obs::Tracer tracer;
    obs::Tracer* tracer_ptr = trace_out.empty() ? nullptr : &tracer;
    obs::RunReportInputs report;
    report.algo = algo;
    report.n = data.size();
    report.dim = data.dim();
    report.eps = eps;
    report.min_pts = min_pts;
    report.threads = static_cast<unsigned>(threads_raw);
    report.ranks = algo == "mudbscan-d" ? ranks : 1;

    WallTimer timer;
    ClusteringResult result;
    MuDbscanStats mu_stats;
    obs::MetricsRegistry baseline_metrics;  // for the non-guarded algorithms
    bool approximate = false;
    if (algo == "mudbscan" || algo == "mudbscan-d") {
      GuardedRunOptions opts;
      opts.limits.deadline_seconds =
          static_cast<double>(deadline_ms) / 1000.0;
      opts.limits.memory_budget_bytes =
          static_cast<std::size_t>(budget_mb) * 1024 * 1024;
      opts.on_budget = on_budget;
      opts.mu.num_threads = static_cast<unsigned>(threads_raw);
      opts.mu.tracer = tracer_ptr;
      opts.ranks = algo == "mudbscan-d" ? ranks : 1;
      auto run = run_guarded(data, params, opts, &guard);
      if (!run.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n",
                     run.status().to_string().c_str());
        return exit_code_for(run.status());
      }
      GuardedRunReport rep = std::move(run).value();
      result = std::move(rep.result);
      mu_stats = rep.stats;
      approximate = rep.approximate;
      if (rep.approximate)
        std::printf(
            "APPROXIMATE result: exact run abandoned (%s); sampled fallback "
            "with rho = %g (%zu sample points)\n",
            rep.degrade_reason.to_string().c_str(), rep.sample_rho,
            rep.sample_size);
      if (budget_mb > 0)
        std::printf("guarded memory peak: %.1f MB of %lld MB budget\n",
                    static_cast<double>(rep.mem_peak_bytes) / (1024.0 * 1024.0),
                    static_cast<long long>(budget_mb));
      report.approximate = rep.approximate;
      report.metrics = std::move(rep.metrics);
      for (const auto& w : rep.workers)
        report.workers.push_back({w.busy_seconds, w.jobs});
      report.has_guard = true;
      report.mem_peak_bytes = rep.mem_peak_bytes;
      report.mem_budget_bytes = opts.limits.memory_budget_bytes;
      report.deadline_seconds = opts.limits.deadline_seconds;
      report.guard_checkpoints = rep.guard_checkpoints;
      if (algo == "mudbscan-d") {
        const MuDbscanDStats& d = rep.dist_stats;
        report.phases = {{"partition", d.t_partition}, {"halo", d.t_halo},
                         {"build_tree", d.t_tree},     {"find_reachable", d.t_reach},
                         {"cluster", d.t_cluster},     {"post_process", d.t_post},
                         {"merge", d.t_merge}};
        for (const MuDbscanDRank& r : d.ranks) {
          obs::RunReportInputs::Rank out;
          out.rank = r.rank;
          out.n_local = r.n_local;
          out.n_halo = r.n_halo;
          out.t_partition = r.t_partition;
          out.t_halo = r.t_halo;
          out.t_local = r.t_tree + r.t_reach + r.t_cluster + r.t_post;
          out.t_merge = r.t_merge;
          out.queries_performed = r.queries_performed;
          out.msgs_sent = r.comm.msgs_sent;
          out.bytes_sent = r.comm.bytes_sent;
          out.msgs_recv = r.comm.msgs_recv;
          out.bytes_recv = r.comm.bytes_recv;
          out.retries = r.comm.retries;
          out.timeouts = r.comm.timeouts;
          report.rank_stats.push_back(out);
        }
      } else if (!approximate) {
        report.phases = {{"build_tree", mu_stats.t_tree},
                         {"find_reachable", mu_stats.t_reach},
                         {"cluster", mu_stats.t_cluster},
                         {"post_process", mu_stats.t_post}};
      }
    } else if (algo == "rdbscan") {
      result = r_dbscan(data, params, nullptr, &baseline_metrics);
    } else if (algo == "gdbscan") {
      result = g_dbscan(data, params, nullptr, &baseline_metrics);
    } else if (algo == "griddbscan") {
      result = grid_dbscan(data, params, nullptr, &baseline_metrics);
    } else if (algo == "brute") {
      result = brute_dbscan(data, params, &baseline_metrics);
    } else {
      throw std::invalid_argument("unknown --algo " + algo);
    }
    const double elapsed = timer.seconds();
    if (algo != "mudbscan" && algo != "mudbscan-d")
      report.metrics = baseline_metrics.snapshot();
    report.seconds = elapsed;

    std::printf("%s: %.3f s — %zu clusters, %zu core, %zu border, %zu noise\n",
                algo.c_str(), elapsed, result.num_clusters(),
                result.num_core(), result.num_border(), result.num_noise());
    if (algo == "mudbscan" && !approximate) {
      std::printf("micro-clusters: %zu, queries saved: %.1f%%\n",
                  mu_stats.num_mcs,
                  100.0 * mu_stats.query_save_fraction(data.size()));
    }
    if (!trace_out.empty()) {
      Status ts = tracer.write_chrome_trace(trace_out);
      if (!ts.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n", ts.to_string().c_str());
        return 1;
      }
      std::printf("trace written to %s (%zu spans)\n", trace_out.c_str(),
                  tracer.events().size());
    }
    if (!metrics_out.empty()) {
      Status ms = obs::write_run_report(report, metrics_out);
      if (!ms.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n", ms.to_string().c_str());
        return 1;
      }
      std::printf("run report written to %s\n", metrics_out.c_str());
    }

    if (!snapshot_out.empty()) {
      if (approximate) {
        // A sampled fallback is not the exact clustering; persisting it
        // would let a serving layer answer with approximate labels that
        // claim exactness. Refuse loudly.
        std::fprintf(stderr,
                     "udbscan: error: refusing --snapshot-out for an "
                     "APPROXIMATE (degraded) result\n");
        return 1;
      }
      serve::ModelSnapshot snap;
      snap.data = data;
      snap.params = params;
      snap.result = result;
      snap.report_json = obs::run_report_json(report);
      Status ss = serve::save_model(snap, snapshot_out);
      if (!ss.ok()) {
        std::fprintf(stderr, "udbscan: error: %s\n", ss.to_string().c_str());
        return 1;
      }
      std::printf("model snapshot written to %s\n", snapshot_out.c_str());
    }

    if (!out_path.empty()) {
      std::ostringstream out;
      out << "# label,is_core (label -1 = noise)"
          << (approximate ? " — APPROXIMATE (sampled fallback)" : "") << '\n';
      for (std::size_t i = 0; i < result.size(); ++i)
        out << result.label[i] << ','
            << static_cast<int>(result.is_core[i]) << '\n';
      Status ws = vfs::write_text_file(out_path, out.str());
      if (!ws.ok()) throw StatusError(std::move(ws));
      std::printf("labels written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const StatusError& e) {
    std::fprintf(stderr, "udbscan: error: %s\n", e.what());
    return exit_code_for(e.status());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udbscan: error: %s\n", e.what());
    return 1;
  }
}
