// udbscan_query — command-line client for udbscan_serve (docs/SERVING.md).
//
//   $ udbscan_query --port 41233 --ping
//   $ udbscan_query --port 41233 --model-info
//   $ udbscan_query --port 41233 --classify queries.csv --out answers.csv
//   $ udbscan_query --port 41233 --neighbors 1.5,2.0 --radius 2.5
//   $ udbscan_query --port 41233 --point-info 17
//   $ udbscan_query --port 41233 --stats --out stats.json
//   $ udbscan_query --port 41233 --telemetry        # live rolling stats, JSON
//   $ udbscan_query --port 41233 --prometheus       # Prometheus exposition
//   $ udbscan_query --port 41233 --garbage 5        # protocol abuse probe
//
// Classify answers are printed/written in the canonical classify CSV format
// (serve/classify_csv.hpp) — byte-identical to what
// `udbscan --snapshot-in --classify` produces offline, so the CI smoke job
// can diff served vs offline answers directly.
//
// --garbage N ships N malformed frames (random bytes, truncated headers,
// absurd counts) and reports how the server answered; it then verifies the
// server still answers a well-formed ping on a fresh connection. Exit 0 means
// every garbage frame got a clean error (or a clean connection drop) and the
// server survived.
//
// Exit codes are distinct per failure class so scripts can branch without
// parsing stderr:
//   0  success
//   1  the server answered with an error (or failed mid-request)
//   2  bad arguments (missing/invalid flags, malformed coordinates)
//   3  server unreachable (connect failed / refused)

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/vfs.hpp"
#include "serve/classify_csv.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"

using namespace udb;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<double> parse_coords(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(std::stod(cell));
  return out;
}

// Deterministic garbage generator: frame bodies that must never crash the
// server — random-looking bytes, truncated classify headers, absurd counts.
std::vector<std::uint8_t> garbage_frame(int i) {
  serve::ByteWriter w;
  switch (i % 5) {
    case 0:  // unknown message type
      w.u8(0xEE);
      w.u32(0xDEADBEEF);
      break;
    case 1:  // classify header claiming a huge batch with no coordinates
      w.u8(2);
      w.u32(0xFFFFFFFF);
      w.u32(3);
      break;
    case 2: {  // pseudo-random byte soup (LCG, fixed seed per index)
      std::uint32_t x = 0x9E3779B9u * static_cast<std::uint32_t>(i + 1);
      for (int k = 0; k < 64; ++k) {
        x = x * 1664525u + 1013904223u;
        w.u8(static_cast<std::uint8_t>(x >> 24));
      }
      break;
    }
    case 3:  // truncated point_info (type byte only)
      w.u8(4);
      break;
    default:  // valid ping type followed by trailing junk
      w.u8(1);
      w.u64(0x0123456789ABCDEFull);
      break;
  }
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const auto port = static_cast<std::uint16_t>(
        cli.get_int_in_range("port", 0, 0, 65535));
    const double timeout = cli.get_positive_double("timeout-s", 10.0);
    const bool ping = cli.get_bool("ping", false);
    const bool model_info = cli.get_bool("model-info", false);
    const bool stats = cli.get_bool("stats", false);
    const bool telemetry = cli.get_bool("telemetry", false);
    const bool prometheus = cli.get_bool("prometheus", false);
    const std::string classify_path = cli.get_string("classify", "");
    const std::int64_t point_info_id = cli.get_int("point-info", -1);
    const std::string neighbors_csv = cli.get_string("neighbors", "");
    const double radius = cli.get_double("radius", 0.0);
    const std::int64_t garbage = cli.get_int_at_least("garbage", 0, 0);
    const std::string out_path = cli.get_string("out", "");
    cli.check_unused();

    if (port == 0) {
      std::fprintf(stderr,
                   "usage: udbscan_query --port P [--ping] [--model-info] "
                   "[--stats] [--telemetry] [--prometheus] "
                   "[--classify queries.csv] [--point-info ID] "
                   "[--neighbors x,y,... --radius R] [--garbage N] "
                   "[--timeout-s S] [--out file]\n");
      return 2;
    }

    auto client = serve::Client::connect(port, timeout);
    if (!client.ok()) {
      std::fprintf(stderr, "udbscan_query: error: %s\n",
                   client.status().to_string().c_str());
      return 3;
    }

    if (ping) {
      if (Status st = client->ping(); !st.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     st.to_string().c_str());
        return 1;
      }
      std::printf("pong\n");
    }

    if (model_info) {
      auto info = client->model_info();
      if (!info.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     info.status().to_string().c_str());
        return 1;
      }
      std::printf("model: %llu points, %u dims, eps %g, minpts %u, %llu "
                  "clusters\n",
                  static_cast<unsigned long long>(info->n), info->dim,
                  info->eps, info->min_pts,
                  static_cast<unsigned long long>(info->num_clusters));
    }

    if (!classify_path.empty()) {
      auto queries = ends_with(classify_path, ".bin")
                         ? load_binary(classify_path, {}, nullptr)
                         : load_csv(classify_path, {}, nullptr);
      if (!queries.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     queries.status().to_string().c_str());
        return 1;
      }
      auto answers = client->classify(
          queries->raw(), static_cast<std::uint32_t>(queries->dim()));
      if (!answers.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     answers.status().to_string().c_str());
        return 1;
      }
      std::size_t exact = 0;
      for (const serve::Classify& c : *answers) exact += c.exact_match ? 1 : 0;
      std::printf("classified %zu queries (%zu exact matches)\n",
                  answers->size(), exact);
      if (!out_path.empty()) {
        std::ostringstream out;
        out << serve::kClassifyCsvHeader << '\n';
        for (const serve::Classify& c : *answers)
          out << serve::classify_csv_row(c) << '\n';
        const Status ws = vfs::write_text_file(out_path, out.str());
        if (!ws.ok()) throw std::runtime_error(ws.to_string());
        std::printf("answers written to %s\n", out_path.c_str());
      } else {
        for (const serve::Classify& c : *answers)
          std::printf("%s\n", serve::classify_csv_row(c).c_str());
      }
    }

    if (point_info_id >= 0) {
      auto info = client->point_info(static_cast<std::uint64_t>(point_info_id));
      if (!info.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     info.status().to_string().c_str());
        return 1;
      }
      std::printf("point %lld: label %lld, %s\n",
                  static_cast<long long>(point_info_id),
                  static_cast<long long>(info->label),
                  serve::kind_name(info->kind));
    }

    if (!neighbors_csv.empty()) {
      const std::vector<double> q = parse_coords(neighbors_csv);
      auto nbrs = client->neighbors(q, radius);
      if (!nbrs.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     nbrs.status().to_string().c_str());
        return 1;
      }
      std::printf("%zu neighbors within %g\n", nbrs->size(), radius);
      for (const auto& [id, d2] : *nbrs)
        std::printf("%llu,%.17g\n", static_cast<unsigned long long>(id), d2);
    }

    if (stats) {
      auto json = client->stats_json();
      if (!json.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     json.status().to_string().c_str());
        return 1;
      }
      if (!out_path.empty()) {
        const Status ws = vfs::write_text_file(out_path, *json + "\n");
        if (!ws.ok()) throw std::runtime_error(ws.to_string());
        std::printf("stats written to %s\n", out_path.c_str());
      } else {
        std::printf("%s\n", json->c_str());
      }
    }

    // Live telemetry scrapes: the server renders the text, the tool just
    // ships it — so what CI validates is exactly what Prometheus would see.
    if (telemetry || prometheus) {
      const serve::TelemetryFormat fmt = prometheus
                                             ? serve::TelemetryFormat::kPrometheus
                                             : serve::TelemetryFormat::kJson;
      auto text = client->telemetry_text(fmt);
      if (!text.ok()) {
        std::fprintf(stderr, "udbscan_query: error: %s\n",
                     text.status().to_string().c_str());
        return 1;
      }
      if (!out_path.empty()) {
        const Status ws = vfs::write_text_file(out_path, *text + "\n");
        if (!ws.ok()) throw std::runtime_error(ws.to_string());
        std::printf("telemetry written to %s\n", out_path.c_str());
      } else {
        std::printf("%s\n", text->c_str());
      }
    }

    if (garbage > 0) {
      // Each garbage frame gets its own connection: the server is allowed
      // to (and for stream-desyncing garbage, should) drop the connection
      // after answering. What it must never do is die.
      std::size_t error_answers = 0, drops = 0;
      for (std::int64_t i = 0; i < garbage; ++i) {
        auto gc = serve::Client::connect(port, timeout);
        if (!gc.ok()) {
          std::fprintf(stderr, "udbscan_query: error: server gone before "
                       "garbage frame %lld: %s\n",
                       static_cast<long long>(i),
                       gc.status().to_string().c_str());
          return 3;
        }
        auto resp = gc->raw_roundtrip(garbage_frame(static_cast<int>(i)));
        if (resp.ok()) {
          if (resp->code == StatusCode::kOk) {
            std::fprintf(stderr, "udbscan_query: error: garbage frame %lld "
                         "was answered OK\n",
                         static_cast<long long>(i));
            return 1;
          }
          ++error_answers;
        } else {
          ++drops;  // connection dropped — acceptable, as long as it answers
        }
      }
      // The real test: after all the abuse, a clean ping still works.
      auto after = serve::Client::connect(port, timeout);
      if (!after.ok() || !after->ping().ok()) {
        std::fprintf(stderr,
                     "udbscan_query: error: server did not survive %lld "
                     "garbage frames\n",
                     static_cast<long long>(garbage));
        return 1;
      }
      std::printf("server survived %lld garbage frames (%zu error answers, "
                  "%zu drops)\n",
                  static_cast<long long>(garbage), error_answers, drops);
    }

    return 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "udbscan_query: error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udbscan_query: error: %s\n", e.what());
    return 1;
  }
}
