// benchdiff — the perf regression gate: compares a fresh bench JSON artifact
// against the committed baseline (BENCH_serve.json / BENCH_kernel.json /
// BENCH_multicore.json) with per-metric tolerances, so CI can fail a PR that
// quietly slows the serving path or the SIMD kernels.
//
//   $ benchdiff --baseline BENCH_serve.json --fresh build/serve.json
//   $ benchdiff --baseline BENCH_kernel.json --fresh f.json --speedup-tolerance 0.30
//
// The comparator dispatches on the artifact's "bench" field:
//
//   serve_throughput  every phase's qps must be >= baseline * (1 - tol),
//                     tol --qps-tolerance (default 0.10); the serve ledger
//                     invariant must hold in the fresh run. Latency deltas
//                     are reported but not gated (they follow qps).
//   micro_kernel      every (dim, block, target) SIMD speedup must be
//                     >= baseline * (1 - tol), tol --speedup-tolerance
//                     (default 0.25 — kernel microbenches are noisy).
//   ext_multicore     correctness gate, not a timing gate: every thread
//                     count must stay exact vs sequential and the per-dataset
//                     query ledger (performed / avoided) must match the
//                     baseline bit-for-bit — the counts are deterministic, so
//                     any drift means the algorithm changed.
//   update_throughput every workload's speedup_vs_refit must be
//                     >= baseline * (1 - tol), tol --speedup-tolerance, and
//                     every fresh workload must report exact=true (the
//                     incremental engine's answer matched the canonicalized
//                     batch refit). Raw updates/s is reported, not gated —
//                     the refit-relative speedup is the machine-independent
//                     number.
//
// Exit codes, distinct per failure class so CI can branch without parsing:
//   0  comparable and within tolerance
//   1  regression (a gated metric fell outside tolerance)
//   2  bad arguments / unreadable file / JSON parse error
//   4  artifacts are not comparable (different bench, config, or shape) —
//      the gate is meaningless, which is different from a regression

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/vfs.hpp"

using namespace udb;

namespace {

// Outcome severity, ordered so we can keep the worst one seen.
enum class Outcome { kPass = 0, kRegression = 1, kIncomparable = 4 };

struct Gate {
  Outcome worst = Outcome::kPass;
  void note(Outcome o) {
    if (static_cast<int>(o) > static_cast<int>(worst)) worst = o;
  }
};

json::Value load(const std::string& path) {
  auto bytes = vfs::read_file(path);
  if (!bytes.ok())
    throw std::invalid_argument(path + ": " + bytes.status().to_string());
  json::Value doc;
  const std::string text(bytes->begin(), bytes->end());
  if (Status st = json::parse(text, doc); !st.ok())
    throw std::invalid_argument(path + ": " + st.to_string());
  return doc;
}

double num(const json::Value& v, const char* path, bool& ok) {
  const json::Value* f = v.find_path(path);
  if (f == nullptr || !f->is_number()) {
    ok = false;
    return 0.0;
  }
  return f->number;
}

// Config comparability: the named scalar fields must match exactly (numbers,
// bools, or strings). A mismatch makes the whole diff meaningless.
bool same_config(const json::Value& a, const json::Value& b,
                 const std::vector<const char*>& keys) {
  for (const char* key : keys) {
    const json::Value* x = a.find(key);
    const json::Value* y = b.find(key);
    if ((x == nullptr) != (y == nullptr)) return false;
    if (x == nullptr) continue;
    if (x->kind != y->kind) return false;
    if (x->is_number() && x->number != y->number) return false;
    if (x->is_bool() && x->boolean != y->boolean) return false;
    if (x->is_string() && x->string != y->string) return false;
  }
  return true;
}

double pct(double base, double fresh) {
  return base == 0.0 ? 0.0 : 100.0 * (fresh - base) / base;
}

// ---- serve_throughput -----------------------------------------------------

void diff_serve(const json::Value& base, const json::Value& fresh,
                double qps_tol, Gate& gate) {
  if (!same_config(base, fresh,
                   {"n", "dim", "eps", "min_pts", "clients", "quick"})) {
    std::printf("serve: bench configs differ (n/dim/eps/min_pts/clients/"
                "quick) — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  const json::Value* bp = base.find("phases");
  const json::Value* fp = fresh.find("phases");
  if (bp == nullptr || !bp->is_array() || fp == nullptr || !fp->is_array()) {
    std::printf("serve: missing phases array — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  for (const json::Value& bphase : bp->array) {
    const std::string name =
        bphase.find("name") ? bphase.find("name")->string_or("?") : "?";
    const json::Value* fphase = nullptr;
    for (const json::Value& cand : fp->array) {
      const json::Value* n = cand.find("name");
      if (n != nullptr && n->is_string() && n->string == name) {
        fphase = &cand;
        break;
      }
    }
    if (fphase == nullptr) {
      std::printf("serve: phase %-16s missing from fresh run — not "
                  "comparable\n",
                  name.c_str());
      gate.note(Outcome::kIncomparable);
      continue;
    }
    bool ok = true;
    const double bq = num(bphase, "qps", ok), fq = num(*fphase, "qps", ok);
    if (!ok) {
      std::printf("serve: phase %-16s missing qps — not comparable\n",
                  name.c_str());
      gate.note(Outcome::kIncomparable);
      continue;
    }
    const bool pass = fq >= bq * (1.0 - qps_tol);
    std::printf("serve: phase %-16s qps %10.1f -> %10.1f (%+6.1f%%, floor "
                "-%2.0f%%)  %s\n",
                name.c_str(), bq, fq, pct(bq, fq), qps_tol * 100.0,
                pass ? "ok" : "REGRESSION");
    if (!pass) gate.note(Outcome::kRegression);
    // Latency is reported, not gated: it tracks qps and load, and double
    // gating one slowdown would just double the flake rate.
    bool lat_ok = true;
    const double bp99 = num(bphase, "p99_us", lat_ok);
    const double fp99 = num(*fphase, "p99_us", lat_ok);
    if (lat_ok)
      std::printf("serve: phase %-16s p99 %9.0fus -> %8.0fus (%+6.1f%%, "
                  "informational)\n",
                  name.c_str(), bp99, fp99, pct(bp99, fp99));
  }
  // The exactness ledger must hold in the fresh run — a perf PR that breaks
  // the performed+avoided bookkeeping is a correctness regression.
  const json::Value* holds = fresh.find_path("serve_ledger.holds");
  if (holds == nullptr || !holds->is_bool() || !holds->boolean) {
    std::printf("serve: fresh serve_ledger invariant does not hold  "
                "REGRESSION\n");
    gate.note(Outcome::kRegression);
  }
}

// ---- micro_kernel ---------------------------------------------------------

void diff_kernel(const json::Value& base, const json::Value& fresh,
                 double speedup_tol, Gate& gate) {
  if (!same_config(base, fresh, {"selected_target"})) {
    std::printf("kernel: selected SIMD target differs — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  const json::Value* br = base.find("results");
  const json::Value* fr = fresh.find("results");
  if (br == nullptr || !br->is_array() || fr == nullptr || !fr->is_array()) {
    std::printf("kernel: missing results array — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  for (const json::Value& brow : br->array) {
    bool ok = true;
    const double dim = num(brow, "dim", ok), block = num(brow, "block", ok);
    const json::Value* frow = nullptr;
    for (const json::Value& cand : fr->array) {
      bool cok = true;
      if (num(cand, "dim", cok) == dim && num(cand, "block", cok) == block &&
          cok) {
        frow = &cand;
        break;
      }
    }
    if (!ok || frow == nullptr) {
      std::printf("kernel: row dim=%g block=%g missing from fresh run — not "
                  "comparable\n",
                  dim, block);
      gate.note(Outcome::kIncomparable);
      continue;
    }
    const json::Value* bt = brow.find("targets");
    const json::Value* ft = frow->find("targets");
    if (bt == nullptr || !bt->is_object() || ft == nullptr ||
        !ft->is_object()) {
      gate.note(Outcome::kIncomparable);
      continue;
    }
    for (const auto& [target, bval] : bt->object) {
      if (target == "scalar") continue;  // speedup 1 by construction
      const json::Value* fval = ft->find(target);
      if (fval == nullptr) continue;  // target not built here: skip, no gate
      bool sok = true;
      const double bs = num(bval, "speedup", sok);
      const double fs = num(*fval, "speedup", sok);
      if (!sok) continue;
      const bool pass = fs >= bs * (1.0 - speedup_tol);
      if (!pass || fs < bs)
        std::printf("kernel: dim=%-2g block=%-4g %-7s speedup %5.2fx -> "
                    "%5.2fx (%+6.1f%%, floor -%2.0f%%)  %s\n",
                    dim, block, target.c_str(), bs, fs, pct(bs, fs),
                    speedup_tol * 100.0, pass ? "ok" : "REGRESSION");
      if (!pass) gate.note(Outcome::kRegression);
    }
  }
}

// ---- ext_multicore --------------------------------------------------------

void diff_multicore(const json::Value& base, const json::Value& fresh,
                    Gate& gate) {
  if (!same_config(base, fresh, {"scale", "quick"})) {
    std::printf("multicore: bench configs differ (scale/quick) — not "
                "comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  const json::Value* bd = base.find("datasets");
  const json::Value* fd = fresh.find("datasets");
  if (bd == nullptr || !bd->is_array() || fd == nullptr || !fd->is_array()) {
    std::printf("multicore: missing datasets array — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  for (const json::Value& bds : bd->array) {
    const std::string name =
        bds.find("name") ? bds.find("name")->string_or("?") : "?";
    const json::Value* fds = nullptr;
    for (const json::Value& cand : fd->array) {
      const json::Value* n = cand.find("name");
      if (n != nullptr && n->is_string() && n->string == name) {
        fds = &cand;
        break;
      }
    }
    if (fds == nullptr) {
      std::printf("multicore: dataset %-12s missing from fresh run — not "
                  "comparable\n",
                  name.c_str());
      gate.note(Outcome::kIncomparable);
      continue;
    }
    // Ledger equality: the query counts are deterministic per dataset, so
    // any drift means the algorithm (not the machine) changed.
    for (const char* key :
         {"metrics.query_ledger.queries_performed",
          "metrics.query_ledger.avoided_total", "n"}) {
      bool ok = true;
      const double bv = num(bds, key, ok), fv = num(*fds, key, ok);
      if (!ok || bv != fv) {
        std::printf("multicore: %-12s %s %12.0f -> %12.0f  REGRESSION\n",
                    name.c_str(), key, bv, fv);
        gate.note(Outcome::kRegression);
      }
    }
    // Exactness: every thread count must still match sequential exactly.
    const json::Value* rows = fds->find("rows");
    if (rows == nullptr || !rows->is_array()) {
      gate.note(Outcome::kIncomparable);
      continue;
    }
    for (const json::Value& row : rows->array) {
      const json::Value* exact = row.find("exact_vs_sequential");
      bool tok = true;
      const double threads = num(row, "threads", tok);
      if (exact == nullptr || !exact->is_bool() || !exact->boolean) {
        std::printf("multicore: %-12s threads=%g not exact vs sequential  "
                    "REGRESSION\n",
                    name.c_str(), threads);
        gate.note(Outcome::kRegression);
      }
    }
    std::printf("multicore: %-12s ledger and exactness checked  ok\n",
                name.c_str());
  }
}

// ---- update_throughput ----------------------------------------------------

void diff_update(const json::Value& base, const json::Value& fresh,
                 double speedup_tol, Gate& gate) {
  if (!same_config(base, fresh,
                   {"n", "dim", "eps", "min_pts", "updates", "quick"})) {
    std::printf("update: bench configs differ (n/dim/eps/min_pts/updates/"
                "quick) — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  const json::Value* bw = base.find("workloads");
  const json::Value* fw = fresh.find("workloads");
  if (bw == nullptr || !bw->is_array() || fw == nullptr || !fw->is_array()) {
    std::printf("update: missing workloads array — not comparable\n");
    gate.note(Outcome::kIncomparable);
    return;
  }
  for (const json::Value& bwl : bw->array) {
    const std::string name =
        bwl.find("name") ? bwl.find("name")->string_or("?") : "?";
    const json::Value* fwl = nullptr;
    for (const json::Value& cand : fw->array) {
      const json::Value* n = cand.find("name");
      if (n != nullptr && n->is_string() && n->string == name) {
        fwl = &cand;
        break;
      }
    }
    if (fwl == nullptr) {
      std::printf("update: workload %-12s missing from fresh run — not "
                  "comparable\n",
                  name.c_str());
      gate.note(Outcome::kIncomparable);
      continue;
    }
    const json::Value* exact = fwl->find("exact");
    if (exact == nullptr || !exact->is_bool() || !exact->boolean) {
      std::printf("update: workload %-12s fresh run not exact vs batch refit"
                  "  REGRESSION\n",
                  name.c_str());
      gate.note(Outcome::kRegression);
    }
    bool ok = true;
    const double bs = num(bwl, "speedup_vs_refit", ok);
    const double fs = num(*fwl, "speedup_vs_refit", ok);
    if (!ok) {
      std::printf("update: workload %-12s missing speedup_vs_refit — not "
                  "comparable\n",
                  name.c_str());
      gate.note(Outcome::kIncomparable);
      continue;
    }
    const bool pass = fs >= bs * (1.0 - speedup_tol);
    std::printf("update: workload %-12s speedup %8.1fx -> %8.1fx (%+6.1f%%, "
                "floor -%2.0f%%)  %s\n",
                name.c_str(), bs, fs, pct(bs, fs), speedup_tol * 100.0,
                pass ? "ok" : "REGRESSION");
    if (!pass) gate.note(Outcome::kRegression);
    bool uok = true;
    const double bu = num(bwl, "updates_per_sec", uok);
    const double fu = num(*fwl, "updates_per_sec", uok);
    if (uok)
      std::printf("update: workload %-12s updates/s %9.0f -> %9.0f "
                  "(%+6.1f%%, informational)\n",
                  name.c_str(), bu, fu, pct(bu, fu));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string baseline_path = cli.get_string("baseline", "");
    const std::string fresh_path = cli.get_string("fresh", "");
    const double qps_tol = cli.get_positive_double("qps-tolerance", 0.10);
    const double speedup_tol =
        cli.get_positive_double("speedup-tolerance", 0.25);
    cli.check_unused();

    if (baseline_path.empty() || fresh_path.empty()) {
      std::fprintf(stderr,
                   "usage: benchdiff --baseline BENCH_x.json --fresh new.json "
                   "[--qps-tolerance 0.10] [--speedup-tolerance 0.25]\n");
      return 2;
    }

    const json::Value base = load(baseline_path);
    const json::Value fresh = load(fresh_path);
    const std::string bkind =
        base.find("bench") ? base.find("bench")->string_or("") : "";
    const std::string fkind =
        fresh.find("bench") ? fresh.find("bench")->string_or("") : "";
    if (bkind.empty() || bkind != fkind) {
      std::fprintf(stderr,
                   "benchdiff: bench kinds differ (baseline '%s' vs fresh "
                   "'%s') — not comparable\n",
                   bkind.c_str(), fkind.c_str());
      return 4;
    }

    Gate gate;
    if (bkind == "serve_throughput") {
      diff_serve(base, fresh, qps_tol, gate);
    } else if (bkind == "micro_kernel") {
      diff_kernel(base, fresh, speedup_tol, gate);
    } else if (bkind == "ext_multicore") {
      diff_multicore(base, fresh, gate);
    } else if (bkind == "update_throughput") {
      diff_update(base, fresh, speedup_tol, gate);
    } else {
      std::fprintf(stderr, "benchdiff: no comparator for bench '%s'\n",
                   bkind.c_str());
      return 4;
    }

    const bool pass = gate.worst == Outcome::kPass;
    std::printf("benchdiff: %s (%s vs %s)\n",
                pass ? "PASS"
                     : (gate.worst == Outcome::kRegression ? "REGRESSION"
                                                           : "INCOMPARABLE"),
                baseline_path.c_str(), fresh_path.c_str());
    return static_cast<int>(gate.worst);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "benchdiff: error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchdiff: error: %s\n", e.what());
    return 2;
  }
}
