// udbscan_serve — serves a persisted cluster model over loopback TCP
// (docs/SERVING.md):
//
//   $ udbscan --input pts.bin --eps 2 --minpts 5 --snapshot-out model.udbm
//   $ udbscan_serve --snapshot model.udbm --port 0 &
//   serving on 127.0.0.1:41233 (2000 points, 2 dims, 3 clusters)
//   $ udbscan_query --port 41233 --classify queries.csv
//
// Prints exactly one "serving on 127.0.0.1:<port>" line per replica to
// stdout (flushed) once each listener is live, so scripts can scrape the
// ephemeral ports. Runs until SIGINT/SIGTERM (graceful: in-flight requests
// finish, the final stats document is written to --stats-out if given) or
// --max-seconds.
//
// --replicas N starts N QueryServers over ONE shared immutable model (one
// line of output each); the retrying client fails over between them, so
// killing one replica mid-batch loses no requests (tests/serve/test_retry).
// Overload protection (docs/SERVING.md): --max-connections, --max-inflight,
// --idle-timeout-ms, and --memory-budget-mb bound what one replica accepts;
// excess load is shed with RESOURCE_EXHAUSTED rather than queued.
//
// Exit codes: 0 clean shutdown, 1 bad snapshot or startup failure, 2 missing
// required flags.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/vfs.hpp"
#include "obs/log.hpp"
#include "serve/client.hpp"
#include "serve/model.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

using namespace udb;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string snapshot = cli.get_string("snapshot", "");
    const auto port = static_cast<std::uint16_t>(
        cli.get_int_in_range("port", 0, 0, 65535));
    const std::int64_t deadline_ms =
        cli.get_int_at_least("deadline-ms", 0, 0);
    const auto threads = static_cast<unsigned>(
        cli.get_int_in_range("threads", 1, 1, 1024));
    const double max_seconds = cli.get_double("max-seconds", 0.0);
    const std::string stats_out = cli.get_string("stats-out", "");
    const std::string log_level_str = cli.get_string("log-level", "");
    const auto replicas = static_cast<std::size_t>(
        cli.get_int_in_range("replicas", 1, 1, 64));
    const auto max_connections = static_cast<std::size_t>(
        cli.get_int_at_least("max-connections", 0, 0));
    const auto max_inflight = static_cast<std::size_t>(
        cli.get_int_at_least("max-inflight", 0, 0));
    const std::int64_t idle_timeout_ms =
        cli.get_int_at_least("idle-timeout-ms", 0, 0);
    const std::int64_t memory_budget_mb =
        cli.get_int_at_least("memory-budget-mb", 0, 0);
    cli.check_unused();

    if (!log_level_str.empty()) {
      auto lvl = obs::parse_log_level(log_level_str);
      if (!lvl.ok())
        throw std::invalid_argument("--log-level: " +
                                    lvl.status().to_string());
      obs::set_log_level(lvl.value());
    }
    if (snapshot.empty()) {
      std::fprintf(stderr,
                   "usage: udbscan_serve --snapshot model.udbm [--port P] "
                   "[--deadline-ms MS] [--threads T] [--max-seconds S] "
                   "[--replicas N] [--max-connections C] [--max-inflight R] "
                   "[--idle-timeout-ms MS] [--memory-budget-mb MB] "
                   "[--stats-out stats.json] "
                   "[--log-level debug|info|warn|error|off]\n");
      return 2;
    }

    auto snap = serve::load_model(snapshot);
    if (!snap.ok()) {
      std::fprintf(stderr, "udbscan_serve: error: %s\n",
                   snap.status().to_string().c_str());
      return 1;
    }
    ThreadPool pool(threads);
    auto model = serve::ClusterModel::build(std::move(*snap),
                                            threads > 1 ? &pool : nullptr);
    if (!model.ok()) {
      std::fprintf(stderr, "udbscan_serve: error: %s\n",
                   model.status().to_string().c_str());
      return 1;
    }

    serve::ServerConfig cfg;
    cfg.request_deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
    cfg.pool_threads = threads;
    cfg.max_connections = max_connections;
    cfg.max_inflight = max_inflight;
    cfg.idle_timeout_seconds = static_cast<double>(idle_timeout_ms) / 1000.0;
    cfg.memory_budget_bytes =
        static_cast<std::size_t>(memory_budget_mb) * 1024 * 1024;

    // All replicas serve the same immutable model snapshot — one build, N
    // listeners. With an explicit --port only replica 0 can have it; the
    // rest take kernel-assigned ephemeral ports.
    std::vector<std::unique_ptr<serve::QueryServer>> servers;
    for (std::size_t k = 0; k < replicas; ++k) {
      cfg.port = k == 0 ? port : 0;
      servers.push_back(std::make_unique<serve::QueryServer>(*model, cfg));
      if (Status st = servers.back()->start(); !st.ok()) {
        std::fprintf(stderr, "udbscan_serve: error: %s\n",
                     st.to_string().c_str());
        return 1;
      }
      std::printf("serving on 127.0.0.1:%u (%zu points, %zu dims, %zu "
                  "clusters)\n",
                  static_cast<unsigned>(servers.back()->port()),
                  (*model)->size(), (*model)->dim(),
                  (*model)->num_clusters());
    }
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const auto t0 = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (max_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count() >= max_seconds)
        break;
    }
    for (auto& s : servers) s->stop();

    if (!stats_out.empty()) {
      // Replica 0's document; under --replicas the others contribute only to
      // the summed shutdown line below.
      const Status ws =
          vfs::write_text_file(stats_out, servers.front()->stats_json() + "\n");
      if (!ws.ok()) throw std::runtime_error(ws.to_string());
      std::printf("stats written to %s\n", stats_out.c_str());
    }
    std::uint64_t total_requests = 0;
    for (auto& s : servers)
      total_requests +=
          s->metrics().snapshot().counter(obs::Counter::kServeRequests);
    std::printf("shutdown: %llu requests served\n",
                static_cast<unsigned long long>(total_requests));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udbscan_serve: error: %s\n", e.what());
    return 1;
  }
}
