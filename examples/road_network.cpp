// Road-network GPS clustering (the paper's 3DSRN workload): points sampled
// along a 3-D road graph. Density-based clustering recovers road segments as
// arbitrary-shaped clusters — the use case where centroid methods fail and
// DBSCAN shines. Optionally writes a labeled CSV for external plotting.
//
//   $ ./road_network [--n 40000] [--eps 0.8] [--minpts 5] [--out labels.csv]

#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "common/vfs.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 40000));
  const double eps = cli.get_double("eps", 0.8);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  const std::string out_path = cli.get_string("out", "");
  cli.check_unused();

  udb::RoadnetConfig cfg;
  const udb::Dataset data = udb::gen_roadnet(n, cfg, /*seed=*/11);

  udb::WallTimer timer;
  udb::MuDbscanStats stats;
  const auto result = udb::mu_dbscan(data, {eps, min_pts}, &stats);

  std::printf("road network trace: n = %zu points along a 3-D road graph\n",
              data.size());
  std::printf("µDBSCAN: %.2f s, %zu road segments found, %zu noise fixes\n",
              timer.seconds(), result.num_clusters(), result.num_noise());
  std::printf("queries saved: %.1f%% (quasi-1D manifolds are the paper's "
              "best case — 81%% on the real 3DSRN)\n",
              100.0 * stats.query_save_fraction(data.size()));

  if (!out_path.empty()) {
    std::ostringstream out;
    out << "# x,y,z,label,is_core\n";
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto p = data.point(static_cast<udb::PointId>(i));
      out << p[0] << ',' << p[1] << ',' << p[2] << ',' << result.label[i]
          << ',' << static_cast<int>(result.is_core[i]) << '\n';
    }
    const udb::Status ws = udb::vfs::write_text_file(out_path, out.str());
    if (!ws.ok()) {
      std::fprintf(stderr, "road_network: %s\n", ws.to_string().c_str());
      return 1;
    }
    std::printf("labeled points written to %s\n", out_path.c_str());
  }
  return 0;
}
