// Stream clustering (the paper's future-work direction, Section VII):
// points arrive in waves; the online micro-cluster summary answers "how many
// guaranteed core points so far?" instantly after every wave, and the exact
// DBSCAN clustering of everything seen so far is available on demand.
//
// The second half is the serving refresh loop (docs/SERVING.md): after each
// wave the stream is snapshotted into an immutable ClusterModel and swapped
// into a ServedModel with one atomic store — queries between waves hit the
// freshly refreshed model without any locking, exactly how a live
// ingest-and-serve deployment would run.
//
//   $ ./stream_clustering [--n 40000] [--waves 8] [--eps 1.0] [--minpts 5]

#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/streaming.hpp"
#include "data/generators.hpp"
#include "obs/metrics.hpp"
#include "serve/model.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 40000));
  const auto waves = static_cast<std::size_t>(cli.get_int("waves", 8));
  const double eps = cli.get_double("eps", 1.0);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  cli.check_unused();

  udb::GalaxyConfig cfg;
  cfg.point_sigma = 0.7;
  const udb::Dataset data = udb::gen_galaxy(n, cfg, /*seed=*/33);

  udb::StreamingMuDbscan stream(data.dim(), {eps, min_pts});
  std::printf("streaming %zu galaxy points in %zu waves\n", n, waves);
  std::printf("%8s %8s %12s %14s %10s %11s\n", "points", "MCs",
              "ingest(ms)", "core bound", "clusters", "offline(ms)");

  const std::size_t wave_size = (n + waves - 1) / waves;
  for (std::size_t start = 0; start < n; start += wave_size) {
    udb::WallTimer ingest;
    const std::size_t end = std::min(n, start + wave_size);
    for (std::size_t i = start; i < end; ++i)
      stream.insert(data.point(static_cast<udb::PointId>(i)));
    const double t_ingest = ingest.seconds();

    // The lower bound is free; the exact result triggers the offline phase.
    const std::size_t bound = stream.guaranteed_core_lower_bound();
    udb::WallTimer offline;
    const auto& result = stream.result();
    std::printf("%8zu %8zu %12.1f %14zu %10zu %11.1f\n", stream.size(),
                stream.num_mcs(), t_ingest * 1e3, bound,
                result.num_clusters(), offline.seconds() * 1e3);
  }

  const auto& final_result = stream.result();
  std::printf("final: %zu clusters, %zu cores (online bound had %zu), "
              "%zu noise\n",
              final_result.num_clusters(), final_result.num_core(),
              stream.guaranteed_core_lower_bound(), final_result.num_noise());

  // ---- ingest -> refresh() -> query: the serving refresh loop ------------
  // Re-run the same stream, but this time publish a servable model after
  // every wave and answer queries against it. The first wave's points are
  // classified after every refresh: their answers can CHANGE as later waves
  // add density (noise becomes border, border becomes core) — exactly the
  // behavior a monitoring dashboard polling a served model would observe.
  std::printf("\nrefresh loop: re-streaming with a served model per wave\n");
  std::printf("%8s %12s %10s %10s %10s %10s\n", "points", "refresh(ms)",
              "clusters", "probe-core", "probe-brd", "probe-noise");

  udb::StreamingMuDbscan live(data.dim(), {eps, min_pts});
  udb::obs::MetricsRegistry metrics;
  std::shared_ptr<udb::serve::ServedModel> served;  // created on first wave
  const std::size_t probe_n = std::min<std::size_t>(wave_size, 2000);

  for (std::size_t start = 0; start < n; start += wave_size) {
    const std::size_t end = std::min(n, start + wave_size);
    for (std::size_t i = start; i < end; ++i)
      live.insert(data.point(static_cast<udb::PointId>(i)));

    // Snapshot the stream into an immutable model and swap it in. Readers
    // (here: the probe loop below; in udbscan_serve: concurrent connection
    // threads) never block on the swap.
    udb::WallTimer refresh;
    auto model = udb::serve::model_from_stream(live);
    if (!model.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   model.status().to_string().c_str());
      return 1;
    }
    if (served == nullptr)
      served = std::make_shared<udb::serve::ServedModel>(*model);
    else
      served->refresh(*model, &metrics);
    const double t_refresh = refresh.seconds();

    // Query the freshly served model: classify the first wave's points and
    // tally how the stream's growing density has re-graded them.
    const auto m = served->get();
    std::size_t core = 0, border = 0, noise = 0;
    for (std::size_t i = 0; i < probe_n; ++i) {
      auto c = m->classify(data.point(static_cast<udb::PointId>(i)), &metrics);
      if (!c.ok()) {
        std::fprintf(stderr, "classify failed: %s\n",
                     c.status().to_string().c_str());
        return 1;
      }
      switch (c->kind) {
        case udb::PointKind::Core: ++core; break;
        case udb::PointKind::Border: ++border; break;
        case udb::PointKind::Noise: ++noise; break;
      }
    }
    std::printf("%8zu %12.1f %10zu %10zu %10zu %10zu\n", m->size(),
                t_refresh * 1e3, m->num_clusters(), core, border, noise);
  }

  const auto snap = metrics.snapshot();
  std::printf("served %llu classifications (%llu exact-match fast path), "
              "%llu refreshes\n",
              static_cast<unsigned long long>(
                  snap.counter(udb::obs::Counter::kServeClassifyPoints)),
              static_cast<unsigned long long>(snap.counter(
                  udb::obs::Counter::kServeClassifyAvoidedExact)),
              static_cast<unsigned long long>(
                  snap.counter(udb::obs::Counter::kServeModelRefreshes)));
  return 0;
}
