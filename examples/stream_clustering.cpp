// Stream clustering (the paper's future-work direction, Section VII):
// points arrive in waves; the online micro-cluster summary answers "how many
// guaranteed core points so far?" instantly after every wave, and the exact
// DBSCAN clustering of everything seen so far is available on demand.
//
//   $ ./stream_clustering [--n 40000] [--waves 8] [--eps 1.0] [--minpts 5]

#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/streaming.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 40000));
  const auto waves = static_cast<std::size_t>(cli.get_int("waves", 8));
  const double eps = cli.get_double("eps", 1.0);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  cli.check_unused();

  udb::GalaxyConfig cfg;
  cfg.point_sigma = 0.7;
  const udb::Dataset data = udb::gen_galaxy(n, cfg, /*seed=*/33);

  udb::StreamingMuDbscan stream(data.dim(), {eps, min_pts});
  std::printf("streaming %zu galaxy points in %zu waves\n", n, waves);
  std::printf("%8s %8s %12s %14s %10s %11s\n", "points", "MCs",
              "ingest(ms)", "core bound", "clusters", "offline(ms)");

  const std::size_t wave_size = (n + waves - 1) / waves;
  for (std::size_t start = 0; start < n; start += wave_size) {
    udb::WallTimer ingest;
    const std::size_t end = std::min(n, start + wave_size);
    for (std::size_t i = start; i < end; ++i)
      stream.insert(data.point(static_cast<udb::PointId>(i)));
    const double t_ingest = ingest.seconds();

    // The lower bound is free; the exact result triggers the offline phase.
    const std::size_t bound = stream.guaranteed_core_lower_bound();
    udb::WallTimer offline;
    const auto& result = stream.result();
    std::printf("%8zu %8zu %12.1f %14zu %10zu %11.1f\n", stream.size(),
                stream.num_mcs(), t_ingest * 1e3, bound,
                result.num_clusters(), offline.seconds() * 1e3);
  }

  const auto& final_result = stream.result();
  std::printf("final: %zu clusters, %zu cores (online bound had %zu), "
              "%zu noise\n",
              final_result.num_clusters(), final_result.num_core(),
              stream.guaranteed_core_lower_bound(), final_result.num_noise());
  return 0;
}
