// Distributed clustering demo: µDBSCAN-D on simulated ranks (the minimpi
// runtime — see src/mpi/minimpi.hpp). Shows the full pipeline the paper's
// Section V describes: kd partitioning, halo exchange, local µDBSCAN, and
// the query-free merge — and checks that the distributed result is exactly
// the sequential clustering at every rank count.
//
//   $ ./distributed_demo [--n 30000] [--ranks 1,2,4,8] [--eps 1.0]

#include <cstdio>

#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/exactness.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 30000));
  const auto ranks = cli.get_int_list("ranks", {1, 2, 4, 8});
  const double eps = cli.get_double("eps", 1.0);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  cli.check_unused();

  udb::GalaxyConfig cfg;
  cfg.point_sigma = 0.7;
  const udb::Dataset data = udb::gen_galaxy(n, cfg, /*seed=*/21);
  const udb::DbscanParams params{eps, min_pts};

  udb::MuDbscanStats seq_stats;
  const auto sequential = udb::mu_dbscan(data, params, &seq_stats);
  std::printf("sequential µDBSCAN: %.3f s, %zu clusters\n", seq_stats.total(),
              sequential.num_clusters());
  std::printf("%6s %10s %10s %8s %9s %8s %7s\n", "ranks", "local(s)",
              "merge(s)", "total(s)", "speedup", "halo", "exact");

  for (const auto r : ranks) {
    udb::MuDbscanDStats st;
    const auto distributed =
        udb::mudbscan_d(data, params, static_cast<int>(r), &st);
    const auto rep = udb::compare_exact(sequential, distributed);
    const double local =
        st.t_halo + st.t_tree + st.t_reach + st.t_cluster + st.t_post;
    std::printf("%6lld %10.3f %10.3f %8.3f %8.2fx %8llu %7s\n",
                static_cast<long long>(r), local, st.t_merge, st.total(),
                seq_stats.total() / st.total(),
                static_cast<unsigned long long>(st.halo_points_total),
                rep.exact() ? "yes" : "NO!");
  }
  std::printf("(distributed times are virtual-time makespans; see "
              "src/mpi/minimpi.hpp for the model)\n");
  return 0;
}
