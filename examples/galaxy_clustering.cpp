// Galaxy catalogue clustering — the workload family that motivates the
// paper (Millennium-run halo catalogues). Generates a hierarchical halo
// model, clusters it with µDBSCAN, verifies exactness against the classical
// R-tree DBSCAN, and prints a cluster census (the largest halos found).
//
//   $ ./galaxy_clustering [--n 50000] [--eps 1.0] [--minpts 5] [--verify]

#include <algorithm>
#include <cstdio>
#include <map>

#include "baselines/r_dbscan.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 50000));
  const double eps = cli.get_double("eps", 1.0);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  const bool verify = cli.get_bool("verify", true);
  cli.check_unused();

  udb::GalaxyConfig cfg;  // 3-D, hierarchical halos + uniform background
  cfg.point_sigma = 0.7;
  const udb::Dataset data = udb::gen_galaxy(n, cfg, /*seed=*/7);
  const udb::DbscanParams params{eps, min_pts};

  udb::WallTimer timer;
  udb::MuDbscanStats stats;
  const auto result = udb::mu_dbscan(data, params, &stats);
  const double t_mu = timer.seconds();

  std::printf("galaxy catalogue analog: n = %zu, eps = %.2f, MinPts = %u\n",
              data.size(), eps, min_pts);
  std::printf("µDBSCAN: %.2f s  (%zu micro-clusters, %.1f%% queries saved)\n",
              t_mu, stats.num_mcs,
              100.0 * stats.query_save_fraction(data.size()));
  std::printf("found %zu halos, %zu noise points (%.1f%% background)\n",
              result.num_clusters(), result.num_noise(),
              100.0 * static_cast<double>(result.num_noise()) /
                  static_cast<double>(data.size()));

  // Census: the five most massive halos.
  std::map<std::int64_t, std::size_t> sizes;
  for (std::int64_t l : result.label)
    if (l != udb::kNoise) ++sizes[l];
  std::vector<std::pair<std::size_t, std::int64_t>> ranked;
  ranked.reserve(sizes.size());
  for (const auto& [label, count] : sizes) ranked.emplace_back(count, label);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("largest halos:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i)
    std::printf(" %zu", ranked[i].first);
  std::printf(" points\n");

  if (verify) {
    timer.reset();
    const auto baseline = udb::r_dbscan(data, params);
    const double t_r = timer.seconds();
    const auto rep = udb::compare_exact(baseline, result);
    std::printf("R-DBSCAN baseline: %.2f s -> µDBSCAN is %.1fx faster\n", t_r,
                t_r / t_mu);
    std::printf("exact DBSCAN clustering: %s%s\n", rep.exact() ? "yes" : "NO",
                rep.exact() ? "" : (" (" + rep.detail + ")").c_str());
    return rep.exact() ? 0 : 1;
  }
  return 0;
}
