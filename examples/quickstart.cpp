// Quickstart: cluster a 2-D two-moons dataset with µDBSCAN in ~20 lines.
//
//   $ ./quickstart [--n 2000] [--eps 0.12] [--minpts 5]
//
// Demonstrates the minimal public API: generate (or load) a Dataset, pick
// DbscanParams, call mu_dbscan(), read the ClusteringResult.

#include <cstdio>

#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  udb::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double eps = cli.get_double("eps", 0.12);
  const auto min_pts = static_cast<std::uint32_t>(cli.get_int("minpts", 5));
  cli.check_unused();

  // Any row-major point buffer works; see common/io.hpp for CSV loading.
  const udb::Dataset data = udb::gen_two_moons(n, 0.05, /*seed=*/42);

  udb::MuDbscanStats stats;
  const udb::ClusteringResult result =
      udb::mu_dbscan(data, {eps, min_pts}, &stats);

  std::printf("µDBSCAN on two moons (n = %zu, eps = %.3f, MinPts = %u)\n",
              data.size(), eps, min_pts);
  std::printf("  clusters: %zu\n", result.num_clusters());
  std::printf("  core / border / noise: %zu / %zu / %zu\n", result.num_core(),
              result.num_border(), result.num_noise());
  std::printf("  micro-clusters: %zu, neighborhood queries saved: %.1f%%\n",
              stats.num_mcs,
              100.0 * stats.query_save_fraction(data.size()));
  std::printf("  label of point 0: %lld (%s)\n",
              static_cast<long long>(result.label[0]),
              result.is_core[0] ? "core" : "non-core");
  return 0;
}
