// Micro-bench for the SIMD distance-kernel family (common/simd.hpp,
// docs/KERNELS.md): one query vs a dim-major SoA block of candidates,
// scalar reference against every runnable dispatch target, across the
// dimensionalities and block sizes the spatial-index leaves actually see.
//
// Every target is first verified BITWISE against the scalar reference on the
// bench inputs (the exactness contract), then timed. Emits machine-readable
// JSON with --out (default BENCH_kernel.json) including the target the
// startup dispatch selected on this host.

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/vfs.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"

using namespace udb;

namespace {

struct TargetResult {
  SimdTarget target;
  double ns_per_point = 0.0;
  double speedup = 1.0;  // scalar_ns / target_ns
};

struct CaseResult {
  std::size_t dim = 0;
  std::size_t block = 0;
  std::vector<TargetResult> targets;  // scalar first
};

// Times `fn` over the block, repeating until ~`budget_points` points have
// been scanned; returns nanoseconds per point. The volatile sink keeps the
// result live without perturbing the loop.
double time_kernel(SqDistBlockSoaFn fn, const double* q, const double* block,
                   std::size_t count, std::size_t dim, double* out,
                   std::uint64_t budget_points) {
  const std::uint64_t iters =
      std::max<std::uint64_t>(1, budget_points / count);
  volatile double sink = 0.0;
  WallTimer timer;
  for (std::uint64_t it = 0; it < iters; ++it) {
    fn(q, block, count, count, dim, out);
    sink = sink + out[count - 1];
  }
  const double s = timer.seconds();
  (void)sink;
  return s * 1e9 / (static_cast<double>(iters) * static_cast<double>(count));
}

void write_json(const std::string& path, const std::vector<CaseResult>& cases,
                std::uint64_t budget_points) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"micro_kernel\",\n"
      << "  \"selected_target\": \"" << simd_target_name(active_simd_target())
      << "\",\n"
      << "  \"budget_points\": " << budget_points << ",\n"
      << "  \"targets\": [";
  const auto targets = runnable_simd_targets();
  for (std::size_t i = 0; i < targets.size(); ++i)
    out << "\"" << simd_target_name(targets[i]) << "\""
        << (i + 1 < targets.size() ? ", " : "");
  out << "],\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    out << "    {\"dim\": " << c.dim << ", \"block\": " << c.block
        << ", \"targets\": {";
    for (std::size_t j = 0; j < c.targets.size(); ++j) {
      const TargetResult& t = c.targets[j];
      out << "\"" << simd_target_name(t.target)
          << "\": {\"ns_per_point\": " << t.ns_per_point
          << ", \"speedup\": " << t.speedup << "}"
          << (j + 1 < c.targets.size() ? ", " : "");
    }
    out << "}}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  const Status st = vfs::write_text_file(path, out.str());
  if (!st.ok()) throw std::runtime_error(st.to_string());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const auto budget_points = static_cast<std::uint64_t>(
      cli.get_int("points", quick ? 400000 : 8000000));
  const std::string out_path = cli.get_string("out", "BENCH_kernel.json");
  cli.check_unused();

  bench::header(
      "Micro-bench — SoA block distance kernels, scalar vs SIMD targets",
      "µDBSCAN leaf-scan hot path (not a paper table); docs/KERNELS.md",
      "all targets verified bitwise against the scalar reference before "
      "timing");
  bench::row("selected target at startup: %s (%zu lanes); UDB_SIMD overrides",
             simd_target_name(active_simd_target()), active_simd_lanes());

  const std::size_t dims[] = {2, 3, 8, 16};
  const std::size_t blocks[] = {16, 64, 256, 2048};
  const auto targets = runnable_simd_targets();

  Rng rng(7);
  std::vector<CaseResult> cases;
  for (std::size_t dim : dims) {
    bench::row("");
    bench::row("%4s %6s | %10s per-target ns/point (speedup vs scalar)",
               "dim", "block", "");
    bench::rule();
    for (std::size_t block : blocks) {
      std::vector<double> data(block * dim), q(dim), ref(block), out(block);
      for (auto& v : data) v = rng.uniform(-100.0, 100.0);
      for (auto& v : q) v = rng.uniform(-100.0, 100.0);

      // Exactness gate: a target that diverges from scalar on the bench
      // inputs invalidates the whole comparison — fail loudly.
      sq_dist_block_soa_scalar(q.data(), data.data(), block, block, dim,
                               ref.data());
      for (SimdTarget t : targets) {
        simd_kernel_for(t)(q.data(), data.data(), block, block, dim,
                           out.data());
        if (std::memcmp(ref.data(), out.data(), block * sizeof(double)) != 0) {
          bench::row("EXACTNESS VIOLATION: %s differs from scalar at dim=%zu "
                     "block=%zu",
                     simd_target_name(t), dim, block);
          return 1;
        }
      }

      CaseResult cr;
      cr.dim = dim;
      cr.block = block;
      std::string line;
      double scalar_ns = 0.0;
      for (SimdTarget t : targets) {
        TargetResult tr;
        tr.target = t;
        tr.ns_per_point = time_kernel(simd_kernel_for(t), q.data(),
                                      data.data(), block, dim, out.data(),
                                      budget_points);
        if (t == SimdTarget::kScalar) scalar_ns = tr.ns_per_point;
        tr.speedup = scalar_ns / std::max(tr.ns_per_point, 1e-12);
        char buf[96];
        std::snprintf(buf, sizeof buf, "  %s %.2f (%.2fx)",
                      simd_target_name(t), tr.ns_per_point, tr.speedup);
        line += buf;
        cr.targets.push_back(tr);
      }
      bench::row("%4zu %6zu |%s", dim, block, line.c_str());
      cases.push_back(std::move(cr));
    }
  }
  bench::rule();

  if (!out_path.empty()) {
    write_json(out_path, cases, budget_points);
    bench::row("json written to %s", out_path.c_str());
  }
  return 0;
}
