// Table II: run-time comparison of µDBSCAN against the sequential baselines
// (R-DBSCAN, G-DBSCAN, GridDBSCAN) on the eight dataset analogs, plus the
// number of micro-clusters and the fraction of neighborhood queries saved.
//
// Expected shape (paper): µDBSCAN fastest on every dataset; G-DBSCAN
// collapses on sparse data (DGB) and competes on dense high-dim data;
// GridDBSCAN struggles at higher dimensionality; query saves span a wide
// range with FOF/KDDB/3DSRN at the top and DGB at the bottom.

#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "metrics/exactness.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const bool skip_slow = cli.get_bool("skip-slow", false);
  cli.check_unused();

  bench::header(
      "Table II — sequential run time (seconds), #MCs, % queries saved",
      "µDBSCAN paper, Table II",
      "datasets are scaled synthetic analogs (see DESIGN.md §2); expect the "
      "ordering and the query-save spread to match the paper, not absolute "
      "seconds");

  const std::vector<std::string> names{"3DSRN", "DGB",   "HHP",    "MPAGB",
                                       "FOF",   "MPAGD", "KDDB14", "KDDB24"};

  bench::row("%-10s %7s %3s %8s %3s | %10s %10s %10s %10s | %8s %7s %6s",
             "dataset", "n", "d", "eps", "mp", "R-DBSCAN", "G-DBSCAN",
             "GridDBSCAN", "uDBSCAN", "#MCs", "save%", "exact");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    const Dataset& ds = nd.data;

    WallTimer t;
    const auto r_res = r_dbscan(ds, nd.params);
    const double t_r = t.seconds();

    double t_g = -1.0;
    ClusteringResult g_res;
    if (!skip_slow) {
      t.reset();
      g_res = g_dbscan(ds, nd.params);
      t_g = t.seconds();
    }

    t.reset();
    const auto grid_res = grid_dbscan(ds, nd.params);
    const double t_grid = t.seconds();

    t.reset();
    MuDbscanStats st;
    const auto mu_res = mu_dbscan(ds, nd.params, &st);
    const double t_mu = t.seconds();

    // Cross-check exactness across all four algorithms on the bench data.
    bool exact = compare_exact(r_res, mu_res).exact() &&
                 compare_exact(r_res, grid_res).exact();
    if (t_g >= 0.0) exact = exact && compare_exact(r_res, g_res).exact();

    char gbuf[32];
    if (t_g >= 0.0)
      std::snprintf(gbuf, sizeof gbuf, "%10.2f", t_g);
    else
      std::snprintf(gbuf, sizeof gbuf, "%10s", "skipped");

    bench::row("%-10s %7zu %3zu %8.3g %3u | %10.2f %s %10.2f %10.2f | %8zu "
               "%6.1f%% %6s",
               nd.name.c_str(), ds.size(), ds.dim(), nd.params.eps,
               nd.params.min_pts, t_r, gbuf, t_grid, t_mu, st.num_mcs,
               100.0 * st.query_save_fraction(ds.size()),
               exact ? "yes" : "NO!");
  }

  bench::rule();
  bench::row("paper Table II: uDBSCAN fastest everywhere; query saves "
             "43.6%%-96.6%%; #MCs << n");
  return 0;
}
