// Table II: run-time comparison of µDBSCAN against the sequential baselines
// (R-DBSCAN, G-DBSCAN, GridDBSCAN) on the eight dataset analogs, plus the
// number of micro-clusters and the fraction of neighborhood queries saved.
//
// Expected shape (paper): µDBSCAN fastest on every dataset; G-DBSCAN
// collapses on sparse data (DGB) and competes on dense high-dim data;
// GridDBSCAN struggles at higher dimensionality; query saves span a wide
// range with FOF/KDDB/3DSRN at the top and DGB at the bottom.

#include <sstream>
#include <stdexcept>

#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/vfs.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "metrics/exactness.hpp"

using namespace udb;

namespace {

struct Table2Row {
  std::string name;
  std::size_t n = 0;
  std::size_t dim = 0;
  double eps = 0.0;
  std::uint32_t min_pts = 0;
  double t_r = 0.0, t_g = -1.0, t_grid = 0.0, t_mu = 0.0;
  std::size_t num_mcs = 0;
  double save_fraction = 0.0;
  bool exact = true;
  std::string metrics_json;  // µDBSCAN-run metrics snapshot embed
};

void write_json(const std::string& path, double scale,
                const std::vector<Table2Row>& rows) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"table2_sequential\",\n  \"scale\": " << scale
      << ",\n  \"datasets\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Table2Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"n\": " << r.n
        << ", \"dim\": " << r.dim << ", \"eps\": " << r.eps
        << ", \"min_pts\": " << r.min_pts
        << ",\n     \"rdbscan_seconds\": " << r.t_r;
    if (r.t_g >= 0.0) out << ", \"gdbscan_seconds\": " << r.t_g;
    out << ", \"griddbscan_seconds\": " << r.t_grid
        << ", \"mudbscan_seconds\": " << r.t_mu
        << ",\n     \"num_mcs\": " << r.num_mcs
        << ", \"query_save_fraction\": " << r.save_fraction
        << ", \"exact\": " << (r.exact ? "true" : "false")
        << ",\n     \"metrics\": " << r.metrics_json << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  const Status st = vfs::write_text_file(path, out.str());
  if (!st.ok()) throw std::runtime_error(st.to_string());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const bool skip_slow = cli.get_bool("skip-slow", false);
  const std::string out_path = cli.get_string("out", "");
  cli.check_unused();

  bench::header(
      "Table II — sequential run time (seconds), #MCs, % queries saved",
      "µDBSCAN paper, Table II",
      "datasets are scaled synthetic analogs (see DESIGN.md §2); expect the "
      "ordering and the query-save spread to match the paper, not absolute "
      "seconds");

  const std::vector<std::string> names{"3DSRN", "DGB",   "HHP",    "MPAGB",
                                       "FOF",   "MPAGD", "KDDB14", "KDDB24"};

  bench::row("%-10s %7s %3s %8s %3s | %10s %10s %10s %10s | %8s %7s %6s",
             "dataset", "n", "d", "eps", "mp", "R-DBSCAN", "G-DBSCAN",
             "GridDBSCAN", "uDBSCAN", "#MCs", "save%", "exact");
  bench::rule();

  std::vector<Table2Row> json_rows;
  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    const Dataset& ds = nd.data;

    WallTimer t;
    const auto r_res = r_dbscan(ds, nd.params);
    const double t_r = t.seconds();

    double t_g = -1.0;
    ClusteringResult g_res;
    if (!skip_slow) {
      t.reset();
      g_res = g_dbscan(ds, nd.params);
      t_g = t.seconds();
    }

    t.reset();
    const auto grid_res = grid_dbscan(ds, nd.params);
    const double t_grid = t.seconds();

    t.reset();
    MuDbscanStats st;
    obs::MetricsRegistry mu_metrics;
    MuDbscanConfig mu_cfg;
    mu_cfg.metrics = &mu_metrics;
    const auto mu_res = mu_dbscan(ds, nd.params, &st, mu_cfg);
    const double t_mu = t.seconds();

    // Cross-check exactness across all four algorithms on the bench data.
    bool exact = compare_exact(r_res, mu_res).exact() &&
                 compare_exact(r_res, grid_res).exact();
    if (t_g >= 0.0) exact = exact && compare_exact(r_res, g_res).exact();

    char gbuf[32];
    if (t_g >= 0.0)
      std::snprintf(gbuf, sizeof gbuf, "%10.2f", t_g);
    else
      std::snprintf(gbuf, sizeof gbuf, "%10s", "skipped");

    bench::row("%-10s %7zu %3zu %8.3g %3u | %10.2f %s %10.2f %10.2f | %8zu "
               "%6.1f%% %6s",
               nd.name.c_str(), ds.size(), ds.dim(), nd.params.eps,
               nd.params.min_pts, t_r, gbuf, t_grid, t_mu, st.num_mcs,
               100.0 * st.query_save_fraction(ds.size()),
               exact ? "yes" : "NO!");

    Table2Row jr;
    jr.name = nd.name;
    jr.n = ds.size();
    jr.dim = ds.dim();
    jr.eps = nd.params.eps;
    jr.min_pts = nd.params.min_pts;
    jr.t_r = t_r;
    jr.t_g = t_g;
    jr.t_grid = t_grid;
    jr.t_mu = t_mu;
    jr.num_mcs = st.num_mcs;
    jr.save_fraction = st.query_save_fraction(ds.size());
    jr.exact = exact;
    jr.metrics_json = bench::metrics_json_object(
        mu_metrics.snapshot(), static_cast<std::uint64_t>(ds.size()));
    json_rows.push_back(std::move(jr));
  }

  bench::rule();
  bench::row("paper Table II: uDBSCAN fastest everywhere; query saves "
             "43.6%%-96.6%%; #MCs << n");
  if (!out_path.empty()) {
    write_json(out_path, scale, json_rows);
    bench::row("json written to %s", out_path.c_str());
  }
  return 0;
}
