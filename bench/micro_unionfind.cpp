// Micro benchmarks for the union-find structure that backs every clustering
// algorithm in the library (the disjoint-set choice is load-bearing for the
// merge phase's claimed cheapness).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "unionfind/union_find.hpp"

namespace {

using namespace udb;

void BM_UnionRandomPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<PointId, PointId>> pairs(n);
  for (auto& pr : pairs)
    pr = {static_cast<PointId>(rng.uniform_index(n)),
          static_cast<PointId>(rng.uniform_index(n))};
  for (auto _ : state) {
    UnionFind uf(n);
    for (const auto& [a, b] : pairs) uf.union_sets(a, b);
    benchmark::DoNotOptimize(uf.find(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionRandomPairs)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_UnionChain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    UnionFind uf(n);
    for (PointId i = 0; i + 1 < n; ++i) uf.union_sets(i, i + 1);
    benchmark::DoNotOptimize(uf.find(static_cast<PointId>(n - 1)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionChain)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FindAfterHeavyUnions(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  UnionFind uf(n);
  Rng rng(2);
  for (std::size_t i = 0; i < 2 * n; ++i)
    uf.union_sets(static_cast<PointId>(rng.uniform_index(n)),
                  static_cast<PointId>(rng.uniform_index(n)));
  PointId q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf.find(q));
    q = static_cast<PointId>((q + 7919) % n);
  }
}
BENCHMARK(BM_FindAfterHeavyUnions)->Arg(100000)->Arg(1000000);

void BM_ComponentExtraction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  UnionFind uf(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n / 2; ++i)
    uf.union_sets(static_cast<PointId>(rng.uniform_index(n)),
                  static_cast<PointId>(rng.uniform_index(n)));
  std::vector<std::uint32_t> ids;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf.component_ids(ids));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ComponentExtraction)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
