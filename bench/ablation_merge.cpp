// Merge-strategy ablation (DESIGN.md §4 "micro"): all-gathered pair replay
// vs the paper's distributed union-find ([19], Patwary et al.) for the
// global resolution step of the merge. Labels are identical by construction
// (tested); this bench shows the cost profile of each across rank counts —
// the all-gather broadcasts the pair list to everyone, the distributed UF
// keeps per-rank state but pays synchronous pointer-chasing rounds.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const auto rank_list = cli.get_int_list("ranks", {4, 8, 16});
  const std::string name = cli.get_string("dataset", "FOF");
  cli.check_unused();

  bench::header("Ablation — merge global-resolution strategy",
                "µDBSCAN paper, Section V-C / reference [19] (engineering "
                "ablation, no table)",
                "times are full µDBSCAN-D makespans; merge column isolates "
                "the merge phase");

  NamedDataset nd = make_named_dataset(name, scale);
  bench::row("dataset %s (n = %zu, eps = %.3g, MinPts = %u)", nd.name.c_str(),
             nd.data.size(), nd.params.eps, nd.params.min_pts);
  bench::row("%6s %-22s | %10s %10s %8s %8s", "ranks", "strategy", "total(s)",
             "merge(s)", "edges", "pairs");
  bench::rule();

  for (auto r : rank_list) {
    for (auto strategy : {MergeStrategy::AllGatherPairs,
                          MergeStrategy::DistributedUnionFind}) {
      MuDbscanDStats st;
      (void)mudbscan_d(nd.data, nd.params, static_cast<int>(r), &st, {}, {},
                       strategy);
      bench::row("%6lld %-22s | %10.3f %10.3f %8llu %8llu",
                 static_cast<long long>(r),
                 strategy == MergeStrategy::AllGatherPairs
                     ? "allgather-pairs"
                     : "distributed-uf",
                 st.total(), st.t_merge,
                 static_cast<unsigned long long>(st.cross_edges),
                 static_cast<unsigned long long>(st.union_pairs));
    }
  }
  bench::rule();
  bench::row("both strategies produce identical labels (tested); the "
             "distributed UF avoids broadcasting the pair list");
  return 0;
}
