// Table VIII: per-step execution time and speedup of µDBSCAN-D (simulated
// ranks) against sequential µDBSCAN on the MPAGD8M analog.
//
// Expected shape: every step attains a healthy speedup; tree construction
// and reachable-group discovery speed up superlinearly (smaller R-trees
// behave better than one big one — the paper's Fig. 7 argument).

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  cli.check_unused();

  bench::header("Table VIII — per-step time and speedup, µDBSCAN vs µDBSCAN-D",
                "µDBSCAN paper, Table VIII (MPAGD8M, 32 nodes)",
                "distributed times are virtual-time makespans");

  NamedDataset nd = make_named_dataset("MPAGD8M", scale);

  MuDbscanStats seq;
  (void)mu_dbscan(nd.data, nd.params, &seq);

  MuDbscanDStats par;
  (void)mudbscan_d(nd.data, nd.params, ranks, &par);

  bench::row("dataset %s, n = %zu, ranks = %d", nd.name.c_str(),
             nd.data.size(), ranks);
  bench::row("%-26s %12s %12s %9s", "step", "uDBSCAN(s)", "uDBSCAN-D(s)",
             "speedup");
  bench::rule();

  auto line = [](const char* step, double s, double p) {
    if (s >= 0.0)
      bench::row("%-26s %12.3f %12.3f %9.2f", step, s, p, p > 0 ? s / p : 0.0);
    else
      bench::row("%-26s %12s %12.3f %9s", step, "-", p, "-");
  };
  line("Tree Construction", seq.t_tree, par.t_tree);
  line("Finding Reachable Groups", seq.t_reach, par.t_reach);
  line("Clustering", seq.t_cluster, par.t_cluster);
  line("Post Processing", seq.t_post, par.t_post);
  line("Merging Time", -1.0, par.t_merge);
  bench::rule();
  const double total_seq = seq.total();
  const double total_par = par.total();
  bench::row("%-26s %12.3f %12.3f %9.2f", "Total Time", total_seq, total_par,
             total_par > 0 ? total_seq / total_par : 0.0);
  bench::row("paper Table VIII: per-step speedups 26-176x on 32 nodes, "
             "total 35x");
  return 0;
}
