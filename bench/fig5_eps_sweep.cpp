// Fig. 5: effect of varying eps on the run time of PDSDBSCAN-D,
// GridDBSCAN-D (grid stand-in) and µDBSCAN-D on the MPAGD100M and FOF56M
// analogs.
//
// Expected shape: µDBSCAN-D lowest at every eps; its % increase with eps is
// far milder than PDSDBSCAN-D's (larger eps means more micro-cluster saves,
// with post-processing growing instead); the grid baseline's time falls with
// eps (fewer, fuller cells).

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/hpdbscan_d.hpp"
#include "dist/mudbscan_d.hpp"
#include "dist/pdsdbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const auto factors = cli.get_double_list("factors", {0.5, 1.0, 1.5, 2.0, 3.0});
  cli.check_unused();

  bench::header("Fig. 5 — run time vs eps (virtual-time makespan, seconds)",
                "µDBSCAN paper, Fig. 5 (a) MPAGD100M, (b) FOF56M",
                "eps swept as multiples of each dataset's base eps");

  for (const auto& name : {std::string("MPAGD100M"), std::string("FOF56M")}) {
    NamedDataset nd = make_named_dataset(name, scale);
    bench::row("");
    bench::row("dataset %s (n = %zu, base eps = %.3g), ranks = %d",
               nd.name.c_str(), nd.data.size(), nd.params.eps, ranks);
    bench::row("%8s | %12s %12s %12s %8s", "eps", "PDSDBSCAN-D", "GridDBSCAN~",
               "uDBSCAN-D", "save%");
    bench::rule();
    for (double f : factors) {
      DbscanParams prm = nd.params;
      prm.eps *= f;
      PdsDbscanDStats pds_st;
      (void)pdsdbscan_d(nd.data, prm, ranks, &pds_st);
      HpdbscanDStats hpd_st;
      (void)hpdbscan_d(nd.data, prm, ranks, &hpd_st);
      MuDbscanDStats mu_st;
      (void)mudbscan_d(nd.data, prm, ranks, &mu_st);
      const double save =
          100.0 * (1.0 - static_cast<double>(mu_st.queries_performed) /
                             static_cast<double>(nd.data.size()));
      bench::row("%8.3g | %12.2f %12.2f %12.2f %7.1f%%", prm.eps,
                 pds_st.total(), hpd_st.total(), mu_st.total(), save);
    }
  }

  bench::rule();
  bench::row("paper Fig. 5: uDBSCAN-D consistently lowest; its runtime grows "
             "far slower with eps than PDSDBSCAN-D");
  return 0;
}
