// Partition-quality ablation (DESIGN.md §4 "micro"): the sampling-based
// median kd partitioning (Section V-A) trades median accuracy for cheap
// computation. This bench sweeps the per-rank sample size and reports the
// load imbalance factor (max rank size / ideal) plus the end-to-end
// µDBSCAN-D makespan, showing where the paper's choice sits.

#include <algorithm>
#include <mutex>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/driver_common.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

namespace {

double imbalance(const Dataset& ds, int ranks, std::size_t sample) {
  mpi::Runtime rt(ranks);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(ranks));
  std::mutex mu;
  rt.run([&](mpi::Comm& comm) {
    PartitionConfig cfg;
    cfg.sample_per_rank = sample;
    LocalSetup setup = prepare_local(comm, ds, 1.0, cfg);
    std::lock_guard<std::mutex> lock(mu);
    sizes[static_cast<std::size_t>(comm.rank())] = setup.n_local;
  });
  const double ideal = static_cast<double>(ds.size()) / ranks;
  return static_cast<double>(*std::max_element(sizes.begin(), sizes.end())) /
         ideal;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  cli.check_unused();

  bench::header("Ablation — sampling-based median partitioning quality",
                "µDBSCAN paper, Section V-A (engineering ablation, no table)",
                "imbalance = largest rank / ideal share; 1.00 is perfect");

  const std::vector<std::string> names{"MPAGD", "FOF", "3DSRN"};
  bench::row("ranks = %d", ranks);
  bench::row("%-10s %10s | %10s %12s", "dataset", "sample", "imbalance",
             "uDBSCAN-D(s)");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    for (std::size_t sample : {8u, 32u, 128u, 512u}) {
      const double imb = imbalance(nd.data, ranks, sample);
      // End-to-end effect (the driver uses the default sample size; the
      // imbalance column isolates the partitioning quality itself).
      MuDbscanDStats st;
      (void)mudbscan_d(nd.data, nd.params, ranks, &st);
      bench::row("%-10s %10zu | %10.3f %12.3f", nd.name.c_str(), sample, imb,
                 st.total());
    }
    bench::rule();
  }
  bench::row("paper: a coarse sample already balances well — the imbalance "
             "column converges quickly with sample size");
  return 0;
}
