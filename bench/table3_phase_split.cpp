// Table III: percentage split-up of µDBSCAN's execution time across its four
// steps (µR-tree construction, finding reachable groups, clustering, post
// core & noise processing) on the four datasets the paper reports.
//
// Expected shape: tree construction is a large share on 3-D galaxy data;
// post-processing dominates when the query-save fraction is high (3DSRN,
// KDDB14) because wndq-core points shift work into Algorithm 7.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  cli.check_unused();

  bench::header("Table III — %% split-up of µDBSCAN step times",
                "µDBSCAN paper, Table III",
                "high query-save datasets shift time into post-processing");

  const std::vector<std::string> names{"3DSRN", "DGB", "MPAGB", "KDDB14"};

  bench::row("%-10s | %8s %8s %10s %8s | %9s %7s", "dataset", "tree%",
             "reach%", "clustering%", "post%", "total(s)", "save%");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, nd.params, &st);
    const double total = st.total();
    bench::row("%-10s | %7.2f%% %7.2f%% %9.2f%% %7.2f%% | %9.2f %6.1f%%",
               nd.name.c_str(), 100.0 * st.t_tree / total,
               100.0 * st.t_reach / total, 100.0 * st.t_cluster / total,
               100.0 * st.t_post / total, total,
               100.0 * st.query_save_fraction(nd.data.size()));
  }

  bench::rule();
  bench::row("paper Table III: tree 0.7-31%%, reach 0-28%%, clustering "
             "2.6-15%%, post 36-97%%");
  return 0;
}
