// Table IV: peak memory consumption of the four sequential algorithms.
// Each algorithm runs in a forked child process so one algorithm's
// high-water mark cannot contaminate another's; the child reports VmHWM
// through a pipe.
//
// Expected shape (paper): GridDBSCAN far above everyone (neighbor-cell
// lists), exploding with dimensionality; G-DBSCAN the leanest (no index);
// µDBSCAN slightly above R-DBSCAN (two-level tree vs one tree).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/sysinfo.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"

using namespace udb;

namespace {

// Runs fn in a fork; returns the child's peak RSS delta in bytes (peak after
// the run minus the baseline captured before the dataset-independent work),
// or 0 on failure.
template <typename Fn>
std::size_t measure_forked(const Fn& fn) {
  int fds[2];
  if (pipe(fds) != 0) return 0;
  const pid_t pid = fork();
  if (pid < 0) return 0;
  if (pid == 0) {
    close(fds[0]);
    fn();
    const std::size_t peak = peak_rss_bytes();
    [[maybe_unused]] ssize_t ignored = write(fds[1], &peak, sizeof peak);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::size_t peak = 0;
  if (read(fds[0], &peak, sizeof peak) != sizeof peak) peak = 0;
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return peak;
}

double mb(std::size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  cli.check_unused();

  bench::header("Table IV — peak memory consumption (MB, process VmHWM)",
                "µDBSCAN paper, Table IV",
                "each algorithm forked into its own process; includes the "
                "dataset itself");

  const std::vector<std::string> names{"3DSRN", "DGB", "MPAGB", "KDDB14"};

  bench::row("%-10s %7s %3s | %10s %10s %12s %10s", "dataset", "n", "d",
             "R-DBSCAN", "G-DBSCAN", "GridDBSCAN", "uDBSCAN");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    const Dataset& ds = nd.data;
    const DbscanParams prm = nd.params;

    const std::size_t m_r =
        measure_forked([&] { (void)r_dbscan(ds, prm); });
    const std::size_t m_g =
        measure_forked([&] { (void)g_dbscan(ds, prm); });
    const std::size_t m_grid =
        measure_forked([&] { (void)grid_dbscan(ds, prm); });
    const std::size_t m_mu =
        measure_forked([&] { (void)mu_dbscan(ds, prm); });

    bench::row("%-10s %7zu %3zu | %9.1f %10.1f %12.1f %10.1f",
               nd.name.c_str(), ds.size(), ds.dim(), mb(m_r), mb(m_g),
               mb(m_grid), mb(m_mu));
  }

  bench::rule();
  bench::row("paper Table IV: GridDBSCAN largest (20 GB at 14d); G-DBSCAN "
             "smallest; uDBSCAN ~ R-DBSCAN + small overhead");
  return 0;
}
