// Table VI: µDBSCAN-D run time on the very large dataset analogs as the
// number of processing cores doubles (paper: 32 -> 64 -> 128; here simulated
// ranks, default 8 -> 16 -> 32).
//
// Expected shape: close-to-halving of runtime per doubling.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const auto rank_list = cli.get_int_list("ranks", {8, 16, 32});
  cli.check_unused();

  bench::header("Table VI — µDBSCAN-D run time with increasing ranks "
                "(virtual-time makespan, seconds)",
                "µDBSCAN paper, Table VI (32/64/128 cores)",
                "");

  std::string head = "dataset      ";
  for (auto r : rank_list) head += "  ranks=" + std::to_string(r);
  bench::row("%s", head.c_str());
  bench::rule();

  for (const auto& name : {std::string("FOF500M"), std::string("MPAGD800M")}) {
    NamedDataset nd = make_named_dataset(name, scale);
    std::string line = nd.name;
    line.resize(13, ' ');
    for (auto r : rank_list) {
      MuDbscanDStats st;
      (void)mudbscan_d(nd.data, nd.params, static_cast<int>(r), &st);
      char buf[32];
      std::snprintf(buf, sizeof buf, " %9.2f", st.total());
      line += buf;
    }
    bench::row("%s", line.c_str());
  }

  bench::rule();
  bench::row("paper Table VI: FOF500M 4230 -> 2641 -> 1801 s; MPAGD800M "
             "1881 -> 978 -> 624 s (near-halving per doubling)");
  return 0;
}
