// Micro benchmarks (google-benchmark): R-tree vs µR-tree construction and
// eps-query cost — the engineering claim behind Section IV-B1 (a two-level
// tree of small AuxR-trees beats one big R-tree on query time).

#include <benchmark/benchmark.h>

#include "core/murtree.hpp"
#include "data/generators.hpp"
#include "index/grid.hpp"
#include "index/kdtree.hpp"
#include "index/rtree.hpp"

namespace {

using namespace udb;

Dataset bench_dataset(std::size_t n) {
  GalaxyConfig cfg;
  return gen_galaxy(n, cfg, 12345);
}

void BM_RTreeBuild(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree(ds.dim());
    for (std::size_t i = 0; i < ds.size(); ++i)
      tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_RTreeBuild)->Arg(2000)->Arg(10000)->Arg(40000);

void BM_MuRTreeBuild(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MuRTree tree(ds, 1.0);
    benchmark::DoNotOptimize(tree.num_mcs());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_MuRTreeBuild)->Arg(2000)->Arg(10000)->Arg(40000);

void BM_RTreeEpsQuery(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  RTree tree(ds.dim());
  for (std::size_t i = 0; i < ds.size(); ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
  std::vector<PointId> out;
  PointId q = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_ball(ds.point(q), 1.0, out);
    benchmark::DoNotOptimize(out.size());
    q = static_cast<PointId>((q + 7919) % ds.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeEpsQuery)->Arg(10000)->Arg(40000)->Arg(100000);

void BM_MuRTreeEpsQuery(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  MuRTree tree(ds, 1.0);
  tree.compute_reachable();
  std::vector<std::pair<PointId, double>> out;
  PointId q = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_neighborhood(q, 1.0, out);
    benchmark::DoNotOptimize(out.size());
    q = static_cast<PointId>((q + 7919) % ds.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MuRTreeEpsQuery)->Arg(10000)->Arg(40000)->Arg(100000);

void BM_KdTreeBuild(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    KdTree tree(ds);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_KdTreeBuild)->Arg(2000)->Arg(10000)->Arg(40000);

void BM_KdTreeEpsQuery(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  KdTree tree(ds);
  std::vector<PointId> out;
  PointId q = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_ball(ds.point(q), 1.0, out);
    benchmark::DoNotOptimize(out.size());
    q = static_cast<PointId>((q + 7919) % ds.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeEpsQuery)->Arg(10000)->Arg(40000)->Arg(100000);

void BM_RTreeBulkLoadStr(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::pair<const double*, PointId>> items;
    items.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i)
      items.emplace_back(ds.ptr(static_cast<PointId>(i)),
                         static_cast<PointId>(i));
    RTree tree = RTree::bulk_load_str(ds.dim(), std::move(items));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.size()));
}
BENCHMARK(BM_RTreeBulkLoadStr)->Arg(10000)->Arg(40000);

void BM_GridBuild(benchmark::State& state) {
  const Dataset ds = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Grid grid(ds, 1.0);
    benchmark::DoNotOptimize(grid.num_cells());
  }
}
BENCHMARK(BM_GridBuild)->Arg(10000)->Arg(40000);

}  // namespace

BENCHMARK_MAIN();
