// Serving bench (docs/SERVING.md): sustained classify throughput and latency
// of udbscan_serve's engine, measured end to end through the real loopback
// TCP stack — in-process QueryServer, N concurrent client threads, each with
// its own connection, hammering classify batches drawn from a mixed pool
// (50% verbatim dataset points exercising the exact-match fast path, 50%
// perturbed/new points exercising the µR-tree search path).
//
// Before any timing, the bench proves exactness under serving: the full
// training set is classified through the server and every answer must equal
// the batch clustering's label and kind. Afterwards it asserts the serve
// classify ledger (performed + avoided_exact == classify_points) on the
// server's own metrics snapshot — the same invariant CI's smoke job checks.
//
// Numbers are machine-dependent; the container this repo is developed in has
// a single hardware thread, so client threads and server workers time-share
// one core (hardware_threads is recorded in the JSON for interpretation).
// Emits BENCH_serve.json with per-phase qps, p50/p99 latency, and the
// embedded metrics snapshot. --quick shrinks everything for CI.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/vfs.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/classify_csv.hpp"
#include "serve/client.hpp"
#include "serve/model.hpp"
#include "serve/server.hpp"

using namespace udb;

namespace {

struct PhaseResult {
  std::string name;
  std::size_t batch = 0;
  std::size_t clients = 0;
  std::uint64_t requests = 0;
  std::uint64_t points = 0;
  double seconds = 0.0;
  double qps = 0.0;          // requests per second
  double points_per_s = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  // Live-telemetry view of the same phase: the server's rolling 10s window
  // scraped over the wire right as the phase ends (docs/OBSERVABILITY.md).
  double tel_qps = 0.0;
  double tel_p50_us = 0.0;
  double tel_p99_us = 0.0;
};

std::uint64_t percentile(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

// One timed phase: `clients` threads, each its own connection, classify
// batches of `batch` points from the query pool for `seconds` wall.
PhaseResult run_phase(const char* name, std::uint16_t port,
                      const std::vector<double>& pool, std::size_t dim,
                      std::size_t clients, std::size_t batch, double seconds) {
  const std::size_t pool_points = pool.size() / dim;
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::uint64_t>> lat(clients);
  std::vector<std::uint64_t> reqs(clients, 0), pts(clients, 0);
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::Client::connect(port, 30.0);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Stagger starting offsets so clients do not serve identical batches
      // in lockstep.
      std::size_t cursor = (c * 9973) % pool_points;
      std::vector<double> buf(batch * dim);
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < batch; ++i) {
          const std::size_t q = (cursor + i) % pool_points;
          std::copy_n(pool.data() + q * dim, dim, buf.data() + i * dim);
        }
        cursor = (cursor + batch) % pool_points;
        WallTimer t;
        auto r = client->classify(buf, static_cast<std::uint32_t>(dim));
        if (!r.ok() || r->size() != batch) {
          failures.fetch_add(1);
          return;
        }
        lat[c].push_back(static_cast<std::uint64_t>(t.seconds() * 1e6));
        ++reqs[c];
        pts[c] += batch;
      }
    });
  }

  WallTimer wall;
  while (wall.seconds() < seconds && failures.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (auto& t : threads) t.join();
  if (failures.load() != 0)
    throw std::runtime_error(std::string("client failure in phase ") + name);

  PhaseResult res;
  res.name = name;
  res.batch = batch;
  res.clients = clients;
  res.seconds = wall.seconds();
  std::vector<std::uint64_t> all;
  for (std::size_t c = 0; c < clients; ++c) {
    res.requests += reqs[c];
    res.points += pts[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  res.qps = static_cast<double>(res.requests) / res.seconds;
  res.points_per_s = static_cast<double>(res.points) / res.seconds;
  res.p50_us = percentile(all, 0.50);
  res.p99_us = percentile(all, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const bool quick = cli.get_bool("quick", false);
    const auto n = static_cast<std::size_t>(
        cli.get_int_at_least("n", quick ? 4000 : 20000, 100));
    const auto clients = static_cast<std::size_t>(
        cli.get_int_in_range("clients", 4, 1, 64));
    const double seconds =
        cli.get_positive_double("seconds", quick ? 0.5 : 3.0);
    const double eps = cli.get_positive_double("eps", 1.5);
    const auto min_pts = static_cast<std::uint32_t>(
        cli.get_int_in_range("minpts", 5, 1, 1000));
    const std::string out_path =
        cli.get_string("out", "BENCH_serve.json");
    cli.check_unused();

    bench::header("serve_throughput — concurrent classify qps and latency",
                  "extension: serving layer over the paper's exact model",
                  "loopback TCP, mixed exact-match/search workload");

    // ---- fit + serve ----------------------------------------------------
    const std::size_t dim = 2;
    const Dataset data = gen_blobs(n, dim, 24, 100.0, 1.0, 0.08, 42);
    const DbscanParams params{eps, min_pts};
    ClusteringResult fitted = mu_dbscan(data, params);
    serve::ModelSnapshot snap;
    snap.data = data;
    snap.params = params;
    snap.result = fitted;
    auto model = serve::ClusterModel::build(std::move(snap));
    if (!model.ok()) throw StatusError(model.status());

    serve::ServerConfig scfg;
    scfg.pool_threads = 2;
    serve::QueryServer server(*model, scfg);
    if (Status st = server.start(); !st.ok()) throw StatusError(st);
    bench::row("model: n = %zu, %zu clusters; serving on 127.0.0.1:%u",
               data.size(), (*model)->num_clusters(),
               static_cast<unsigned>(server.port()));

    // ---- exactness under serving ---------------------------------------
    // Every dataset point classified through the server must reproduce the
    // batch clustering bit-for-bit (label AND kind).
    {
      auto client = serve::Client::connect(server.port(), 30.0);
      if (!client.ok()) throw StatusError(client.status());
      const std::size_t chunk = 1000;
      std::size_t checked = 0;
      for (std::size_t base = 0; base < n; base += chunk) {
        const std::size_t cnt = std::min(chunk, n - base);
        auto r = client->classify(
            {data.raw().data() + base * dim, cnt * dim},
            static_cast<std::uint32_t>(dim));
        if (!r.ok()) throw StatusError(r.status());
        for (std::size_t i = 0; i < cnt; ++i) {
          const auto id = static_cast<PointId>(base + i);
          if ((*r)[i].label != fitted.label[id] ||
              (*r)[i].kind != fitted.kind(id))
            throw std::runtime_error(
                "EXACTNESS VIOLATION: served classify of dataset point " +
                std::to_string(id) + " diverged from the batch clustering");
          ++checked;
        }
      }
      bench::row("exactness: %zu/%zu served self-classifications match the "
                 "batch clustering",
                 checked, n);
    }

    // ---- query pool: 50%% verbatim points, 50%% perturbed/new ----------
    std::vector<double> pool;
    {
      std::mt19937_64 rng(7);
      std::uniform_int_distribution<std::size_t> pick(0, n - 1);
      std::normal_distribution<double> jitter(0.0, eps);
      const std::size_t pool_points = 4096;
      pool.reserve(pool_points * dim);
      for (std::size_t i = 0; i < pool_points; ++i) {
        const double* p = data.ptr(static_cast<PointId>(pick(rng)));
        for (std::size_t a = 0; a < dim; ++a) {
          const double v = p[a];
          pool.push_back(i % 2 == 0 ? v : v + jitter(rng));
        }
      }
    }

    // ---- timed phases ---------------------------------------------------
    std::vector<PhaseResult> phases;
    bench::row("%16s | %7s %6s | %9s %12s %9s %9s", "phase", "clients",
               "batch", "req/s", "points/s", "p50(us)", "p99(us)");
    bench::rule();
    const struct {
      const char* name;
      std::size_t batch;
    } kPhases[] = {
        {"single_point", 1},
        {"batch_64", 64},
        {"batch_1024_pool", 1024},  // over the pool threshold: pooled fanout
    };
    bool first_phase = true;
    for (const auto& ph : kPhases) {
      PhaseResult r = run_phase(ph.name, server.port(), pool, dim, clients,
                                ph.batch, seconds);
      bench::row("%16s | %7zu %6zu | %9.0f %12.0f %9llu %9llu",
                 r.name.c_str(), r.clients, r.batch, r.qps, r.points_per_s,
                 static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us));
      // Scrape the TELEMETRY admin RPC while the phase's samples still
      // dominate the rolling 10s window; the bench and the live window must
      // agree on the latency distribution they just both watched.
      {
        auto tclient = serve::Client::connect(server.port(), 30.0);
        if (!tclient.ok()) throw StatusError(tclient.status());
        auto tel = tclient->telemetry();
        if (!tel.ok()) throw StatusError(tel.status());
        const serve::TelemetryWindow& w10 = tel->windows[1];  // {1s,10s,60s}
        r.tel_qps = w10.qps;
        r.tel_p50_us = w10.p50_us;
        r.tel_p99_us = w10.p99_us;
        bench::row("%16s | telemetry 10s window: p50 %.0fus p99 %.0fus",
                   r.name.c_str(), w10.p50_us, w10.p99_us);
        // Cross-check only the first phase: later phases share the window
        // with their predecessor's tail. Client-side p50 includes loopback
        // and client overhead, so the comparison carries an absolute floor.
        if (first_phase && r.seconds >= 1.5) {
          const double p50 = static_cast<double>(r.p50_us);
          const double tol = std::max(0.20 * p50, 150.0);
          if (std::abs(w10.p50_us - p50) > tol)
            throw std::runtime_error(
                "TELEMETRY DRIFT: live 10s-window p50 " +
                std::to_string(w10.p50_us) + "us vs bench-measured p50 " +
                std::to_string(r.p50_us) + "us (tolerance " +
                std::to_string(tol) + "us)");
        }
      }
      first_phase = false;
      phases.push_back(std::move(r));
    }
    bench::rule();

    // ---- ledger invariant ----------------------------------------------
    const obs::MetricsSnapshot ms = server.metrics().snapshot();
    const std::uint64_t cls =
        ms.counter(obs::Counter::kServeClassifyPoints);
    const std::uint64_t performed =
        ms.counter(obs::Counter::kServeClassifyPerformed);
    const std::uint64_t avoided =
        ms.counter(obs::Counter::kServeClassifyAvoidedExact);
    const bool ledger_ok = performed + avoided == cls;
    bench::row("serve ledger: %llu classified = %llu performed + %llu "
               "avoided_exact — %s",
               static_cast<unsigned long long>(cls),
               static_cast<unsigned long long>(performed),
               static_cast<unsigned long long>(avoided),
               ledger_ok ? "holds" : "VIOLATED");
    server.stop();
    if (!ledger_ok) return 1;

    // ---- JSON -----------------------------------------------------------
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"serve_throughput\",\n"
        << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"n\": " << n << ",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"eps\": " << eps << ",\n"
        << "  \"min_pts\": " << min_pts << ",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"exactness_checked_points\": " << n << ",\n"
        << "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const PhaseResult& r = phases[i];
      out << "    {\"name\": \"" << r.name << "\", \"clients\": " << r.clients
          << ", \"batch\": " << r.batch << ", \"requests\": " << r.requests
          << ", \"points\": " << r.points << ", \"seconds\": " << r.seconds
          << ", \"qps\": " << r.qps << ", \"points_per_s\": " << r.points_per_s
          << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
          << ", \"telemetry_qps_10s\": " << r.tel_qps
          << ", \"telemetry_p50_us\": " << r.tel_p50_us
          << ", \"telemetry_p99_us\": " << r.tel_p99_us
          << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"serve_ledger\": {\"classify_points\": " << cls
        << ", \"performed\": " << performed << ", \"avoided_exact\": "
        << avoided << ", \"holds\": " << (ledger_ok ? "true" : "false")
        << "},\n"
        << "  \"metrics\": " << bench::metrics_json_object(ms, 0) << "\n"
        << "}\n";
    const Status st = vfs::write_text_file(out_path, out.str());
    if (!st.ok()) throw std::runtime_error(st.to_string());
    bench::row("json written to %s", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: error: %s\n", e.what());
    return 1;
  }
}
