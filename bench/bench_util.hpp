// Shared helpers for the table/figure bench binaries: uniform ASCII table
// output and a standard header explaining the scaled-reproduction context.

#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace udb::bench {

inline void header(const char* experiment, const char* paper_ref,
                   const char* note) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (note && note[0]) std::printf("Note: %s\n", note);
  std::printf("==========================================================\n");
}

// printf-style row helper so bench code stays table-shaped.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

inline void rule() {
  std::printf("----------------------------------------------------------\n");
}

// Serializes a metrics snapshot as a self-contained JSON object (the same
// shape as the run report's ledger/murtree/counters/histograms sections), for
// embedding into the BENCH_*.json files. `points` sizes the ledger's
// query_savings denominator.
inline std::string metrics_json_object(const obs::MetricsSnapshot& snap,
                                       std::uint64_t points) {
  obs::JsonWriter w;
  w.begin_object();
  obs::write_metrics_snapshot(w, snap, points);
  w.end_object();
  return w.str();
}

}  // namespace udb::bench
