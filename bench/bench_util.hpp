// Shared helpers for the table/figure bench binaries: uniform ASCII table
// output and a standard header explaining the scaled-reproduction context.

#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace udb::bench {

inline void header(const char* experiment, const char* paper_ref,
                   const char* note) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (note && note[0]) std::printf("Note: %s\n", note);
  std::printf("==========================================================\n");
}

// printf-style row helper so bench code stays table-shaped.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

inline void rule() {
  std::printf("----------------------------------------------------------\n");
}

}  // namespace udb::bench
