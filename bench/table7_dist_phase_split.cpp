// Table VII: percentage split-up of µDBSCAN-D's phases (tree construction,
// finding reachable groups, clustering, post processing, merging) on
// simulated ranks.
//
// Expected shape: merging stays a small slice (the paper's claim that the
// parallelization overhead is minimal).

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const bool cli_per_rank = cli.get_bool("per-rank", false);
  cli.check_unused();

  bench::header("Table VII — %% split-up of µDBSCAN-D step times",
                "µDBSCAN paper, Table VII (32 nodes; here simulated ranks)",
                "halo exchange is folded into the clustering preamble by the "
                "paper; shown separately here");

  const std::vector<std::string> names{"FOF28M14D", "MPAGD100M", "FOF56M"};

  bench::row("ranks = %d", ranks);
  bench::row("%-12s | %6s %6s %6s %10s %6s %6s | %9s", "dataset", "halo%",
             "tree%", "reach%", "clustering%", "post%", "merge%", "total(s)");
  bench::rule();

  const bool per_rank = cli_per_rank;
  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    MuDbscanDStats st;
    (void)mudbscan_d(nd.data, nd.params, ranks, &st);
    const double total = st.total();
    bench::row("%-12s | %5.2f%% %5.2f%% %5.2f%% %9.2f%% %5.2f%% %5.2f%% | %9.2f",
               nd.name.c_str(), 100.0 * st.t_halo / total,
               100.0 * st.t_tree / total, 100.0 * st.t_reach / total,
               100.0 * st.t_cluster / total, 100.0 * st.t_post / total,
               100.0 * st.t_merge / total, total);
    if (per_rank && !st.ranks.empty()) {
      // Per-rank splits behind the makespans: load balance of each phase
      // plus the traffic each rank generated (obs CommStats).
      bench::row("  %-10s | %8s %8s %8s %8s | %7s %7s %9s %9s", "rank",
                 "halo(s)", "local(s)", "merge(s)", "queries", "n_loc",
                 "n_halo", "msgs", "bytes");
      for (const MuDbscanDRank& r : st.ranks) {
        const double local = r.t_tree + r.t_reach + r.t_cluster + r.t_post;
        bench::row("  %-10d | %8.3f %8.3f %8.3f %8llu | %7llu %7llu %9llu "
                   "%9llu",
                   r.rank, r.t_halo, local, r.t_merge,
                   static_cast<unsigned long long>(r.queries_performed),
                   static_cast<unsigned long long>(r.n_local),
                   static_cast<unsigned long long>(r.n_halo),
                   static_cast<unsigned long long>(r.comm.msgs_sent),
                   static_cast<unsigned long long>(r.comm.bytes_sent));
      }
    }
  }

  bench::rule();
  bench::row("paper Table VII: merging 1.8-3.9%% — parallelization overhead "
             "is minimal");
  return 0;
}
