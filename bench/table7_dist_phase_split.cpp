// Table VII: percentage split-up of µDBSCAN-D's phases (tree construction,
// finding reachable groups, clustering, post processing, merging) on
// simulated ranks.
//
// Expected shape: merging stays a small slice (the paper's claim that the
// parallelization overhead is minimal).

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  cli.check_unused();

  bench::header("Table VII — %% split-up of µDBSCAN-D step times",
                "µDBSCAN paper, Table VII (32 nodes; here simulated ranks)",
                "halo exchange is folded into the clustering preamble by the "
                "paper; shown separately here");

  const std::vector<std::string> names{"FOF28M14D", "MPAGD100M", "FOF56M"};

  bench::row("ranks = %d", ranks);
  bench::row("%-12s | %6s %6s %6s %10s %6s %6s | %9s", "dataset", "halo%",
             "tree%", "reach%", "clustering%", "post%", "merge%", "total(s)");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    MuDbscanDStats st;
    (void)mudbscan_d(nd.data, nd.params, ranks, &st);
    const double total = st.total();
    bench::row("%-12s | %5.2f%% %5.2f%% %5.2f%% %9.2f%% %5.2f%% %5.2f%% | %9.2f",
               nd.name.c_str(), 100.0 * st.t_halo / total,
               100.0 * st.t_tree / total, 100.0 * st.t_reach / total,
               100.0 * st.t_cluster / total, 100.0 * st.t_post / total,
               100.0 * st.t_merge / total, total);
  }

  bench::rule();
  bench::row("paper Table VII: merging 1.8-3.9%% — parallelization overhead "
             "is minimal");
  return 0;
}
