// Fig. 7: scalability of µDBSCAN-D — speedup over sequential µDBSCAN as the
// number of ranks grows (paper: 4 -> 32 nodes, several datasets, up to 70x
// superlinear speedup thanks to smaller per-node R-trees).
//
// Speedup here = sequential µDBSCAN wall time / µDBSCAN-D virtual-time
// makespan. Superlinearity can appear for the same reason as the paper:
// many small µR-trees beat one large one.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const auto rank_list = cli.get_int_list("ranks", {4, 8, 16, 32});
  cli.check_unused();

  bench::header("Fig. 7 — µDBSCAN-D speedup vs number of ranks",
                "µDBSCAN paper, Fig. 7 (4..32 nodes)",
                "speedup = sequential µDBSCAN time / distributed makespan");

  const std::vector<std::string> names{"MPAGD8M", "FOF56M", "MPAGD100M",
                                       "FOF28M14D"};

  std::string head = "dataset        seq(s) ";
  for (auto r : rank_list) head += "     p=" + std::to_string(r);
  bench::row("%s", head.c_str());
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    MuDbscanStats seq;
    (void)mu_dbscan(nd.data, nd.params, &seq);
    const double t_seq = seq.total();

    std::string line = nd.name;
    line.resize(13, ' ');
    char buf[32];
    std::snprintf(buf, sizeof buf, " %8.2f", t_seq);
    line += buf;
    for (auto r : rank_list) {
      MuDbscanDStats st;
      (void)mudbscan_d(nd.data, nd.params, static_cast<int>(r), &st);
      std::snprintf(buf, sizeof buf, " %6.2fx", t_seq / st.total());
      line += buf;
    }
    bench::row("%s", line.c_str());
  }

  bench::rule();
  bench::row("paper Fig. 7: speedup grows with ranks, up to 70x at 32 nodes "
             "(superlinear: smaller R-trees query faster)");
  return 0;
}
