// Ablation bench (not a paper table — DESIGN.md §4 "micro"): quantifies each
// µDBSCAN design choice by toggling it off:
//   * 2*eps MC-limiting rule (Algorithm 3)
//   * dynamic wndq promotion (Algorithm 6 lines 18-21)
//   * reachable-MC MBR filtration (Section IV-B2)
// All variants remain exact (tested in test_mudbscan.cpp); this bench shows
// what each buys in time, queries and distance evaluations.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const std::string name = cli.get_string("dataset", "MPAGD");
  cli.check_unused();

  bench::header("Ablation — µDBSCAN design choices toggled individually",
                "engineering ablation for DESIGN.md §4 (not a paper table)",
                "every variant still produces exact DBSCAN clustering");

  NamedDataset nd = make_named_dataset(name, scale);
  bench::row("dataset %s (n = %zu, d = %zu, eps = %.3g, MinPts = %u)",
             nd.name.c_str(), nd.data.size(), nd.data.dim(), nd.params.eps,
             nd.params.min_pts);
  bench::row("%-28s | %9s %9s %9s %12s", "variant", "time(s)", "#MCs",
             "queries", "save%");
  bench::rule();

  struct Variant {
    const char* label;
    MuDbscanConfig cfg;
  };
  MuDbscanConfig full, no2eps, nopromo, nofilt, nobulk, none;
  no2eps.two_eps_rule = false;
  nopromo.dynamic_promotion = false;
  nofilt.mbr_filtration = false;
  nobulk.bulk_aux = false;
  none.two_eps_rule = false;
  none.dynamic_promotion = false;
  none.mbr_filtration = false;
  none.bulk_aux = false;

  const Variant variants[] = {
      {"full (paper algorithm)", full},
      {"no 2*eps rule", no2eps},
      {"no dynamic promotion", nopromo},
      {"no MBR filtration", nofilt},
      {"incremental aux trees", nobulk},
      {"all optimizations off", none},
  };

  for (const auto& v : variants) {
    WallTimer t;
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, nd.params, &st, v.cfg);
    bench::row("%-28s | %9.3f %9zu %9llu %11.1f%%", v.label, t.seconds(),
               st.num_mcs,
               static_cast<unsigned long long>(st.queries_performed),
               100.0 * st.query_save_fraction(nd.data.size()));
  }

  bench::rule();
  return 0;
}
