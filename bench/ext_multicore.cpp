// Extension bench (paper Section VII): intra-node multicore µDBSCAN.
//
// Two complementary views, side by side:
//   * MEASURED — the real thread-parallel engine (MuDbscanConfig::num_threads,
//     shared µR-tree + lock-free union-find), wall-clock per thread count,
//     with an exactness check of every parallel run against the sequential
//     clustering (same core set / core partition / noise set).
//   * MODELED — µDBSCAN-SM, µDBSCAN-D's decomposition under a shared-memory
//     transfer model (alpha=100ns, ~20GB/s), plus the interconnect model at
//     the same rank counts, for comparison with the distributed chapter.
//
// Measured speedups depend on the machine: on a single hardware thread the
// parallel engine can only show overhead (the JSON records
// hardware_threads so downstream tooling can interpret the numbers).
// Emits machine-readable JSON with --out (default BENCH_multicore.json).

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/vfs.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_sm.hpp"
#include "metrics/exactness.hpp"

using namespace udb;

namespace {

struct Row {
  long long threads = 1;
  double measured_s = 0.0;
  double speedup = 1.0;
  bool exact = true;
  double sm_model_s = 0.0;
  double d_model_s = 0.0;
};

struct DatasetReport {
  std::string name;
  std::size_t n = 0;
  double seq_s = 0.0;
  std::string metrics_json;  // sequential-run metrics snapshot embed
  std::vector<Row> rows;
};

// Best-of-reps wall time for one configuration; returns the last result so
// the caller can check exactness. `metrics` (optional) receives the merged
// engine metrics of every rep.
double time_run(const NamedDataset& nd, unsigned threads, int reps,
                ClusteringResult& out,
                obs::MetricsRegistry* metrics = nullptr) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    MuDbscanConfig cfg;
    cfg.num_threads = threads;
    // Only the final rep feeds the embed, so its counts describe one run.
    cfg.metrics = r + 1 == reps ? metrics : nullptr;
    WallTimer timer;
    out = mu_dbscan(nd.data, nd.params, nullptr, cfg);
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void write_json(const std::string& path, double scale, bool quick, int reps,
                const std::vector<DatasetReport>& reports) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"ext_multicore\",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"simd_target\": \"" << simd_target_name(active_simd_target())
      << "\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DatasetReport& rep = reports[i];
    out << "    {\n"
        << "      \"name\": \"" << rep.name << "\",\n"
        << "      \"n\": " << rep.n << ",\n"
        << "      \"sequential_seconds\": " << rep.seq_s << ",\n"
        << "      \"metrics\": " << rep.metrics_json << ",\n"
        << "      \"rows\": [\n";
    for (std::size_t j = 0; j < rep.rows.size(); ++j) {
      const Row& r = rep.rows[j];
      out << "        {\"threads\": " << r.threads
          << ", \"measured_seconds\": " << r.measured_s
          << ", \"speedup\": " << r.speedup
          << ", \"exact_vs_sequential\": " << (r.exact ? "true" : "false")
          << ", \"sm_model_seconds\": " << r.sm_model_s
          << ", \"d_model_seconds\": " << r.d_model_s << "}"
          << (j + 1 < rep.rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  const Status st = vfs::write_text_file(path, out.str());
  if (!st.ok()) throw std::runtime_error(st.to_string());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const double scale = cli.get_double("scale", quick ? 0.1 : 1.0);
  const auto threads = cli.get_int_list("threads", {1, 2, 4, 8});
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 1 : 3));
  const std::string out_path =
      cli.get_string("out", "BENCH_multicore.json");
  cli.check_unused();

  bench::header(
      "Extension — intra-node multicore µDBSCAN: measured and modeled",
      "µDBSCAN paper, Section VII future work (not a paper table)",
      "measured = real thread-parallel engine (shared µR-tree, lock-free "
      "union-find); modeled = µDBSCAN-SM/D cost models");
  bench::row("hardware threads: %u (oversubscribed thread counts remain "
             "exact; speedups need real cores)",
             std::thread::hardware_concurrency());

  std::vector<DatasetReport> reports;
  const std::vector<std::string> names{"MPAGD100M", "FOF56M"};
  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    DatasetReport rep;
    rep.name = nd.name;
    rep.n = nd.data.size();

    ClusteringResult seq;
    obs::MetricsRegistry seq_metrics;
    rep.seq_s = time_run(nd, 1, reps, seq, &seq_metrics);
    rep.metrics_json = bench::metrics_json_object(
        seq_metrics.snapshot(), static_cast<std::uint64_t>(nd.data.size()));

    bench::row("");
    bench::row("dataset %s (n = %zu), sequential engine: %.3f s",
               nd.name.c_str(), nd.data.size(), rep.seq_s);
    bench::row("%8s | %11s %8s %6s | %10s %10s", "threads", "measured(s)",
               "speedup", "exact", "SM-mdl(s)", "D-mdl(s)");
    bench::rule();
    for (auto t : threads) {
      if (t < 1) throw std::invalid_argument("--threads entries must be >= 1");
      Row row;
      row.threads = t;
      if (t == 1) {
        row.measured_s = rep.seq_s;
        row.exact = true;
      } else {
        ClusteringResult got;
        row.measured_s = time_run(nd, static_cast<unsigned>(t), reps, got);
        row.exact = compare_exact(seq, got).exact();
      }
      row.speedup = rep.seq_s / std::max(row.measured_s, 1e-12);

      MuDbscanDStats sm, d;
      (void)mudbscan_sm(nd.data, nd.params, static_cast<int>(t), &sm);
      (void)mudbscan_d(nd.data, nd.params, static_cast<int>(t), &d);
      row.sm_model_s = sm.total();
      row.d_model_s = d.total();

      bench::row("%8lld | %11.3f %7.2fx %6s | %10.3f %10.3f", row.threads,
                 row.measured_s, row.speedup, row.exact ? "yes" : "NO",
                 row.sm_model_s, row.d_model_s);
      if (!row.exact) {
        bench::row("EXACTNESS VIOLATION at %lld threads", row.threads);
        return 1;
      }
      rep.rows.push_back(row);
    }
    reports.push_back(std::move(rep));
  }
  bench::rule();

  if (!out_path.empty()) {
    write_json(out_path, scale, quick, reps, reports);
    bench::row("json written to %s", out_path.c_str());
  }
  return 0;
}
