// Future-work extension bench (paper Section VII): intra-node multicore
// µDBSCAN-SM — µDBSCAN-D's decomposition with a shared-memory cost model.
// Shows thread-count scaling of the modeled makespan next to the
// interconnect model at the same rank counts.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_sm.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const auto threads = cli.get_int_list("threads", {1, 2, 4, 8});
  cli.check_unused();

  bench::header("Extension — µDBSCAN-SM: intra-node multicore scaling",
                "µDBSCAN paper, Section VII future work (not a paper table)",
                "same decomposition as µDBSCAN-D; shared-memory transfer "
                "model (alpha=100ns, ~20GB/s)");

  const std::vector<std::string> names{"MPAGD8M", "FOF56M"};
  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    MuDbscanStats seq;
    (void)mu_dbscan(nd.data, nd.params, &seq);
    bench::row("");
    bench::row("dataset %s (n = %zu), sequential µDBSCAN: %.3f s",
               nd.name.c_str(), nd.data.size(), seq.total());
    bench::row("%8s | %10s %10s %9s", "threads", "SM(s)", "D(s)", "SM speedup");
    bench::rule();
    for (auto t : threads) {
      MuDbscanDStats sm, d;
      (void)mudbscan_sm(nd.data, nd.params, static_cast<int>(t), &sm);
      (void)mudbscan_d(nd.data, nd.params, static_cast<int>(t), &d);
      bench::row("%8lld | %10.3f %10.3f %8.2fx", static_cast<long long>(t),
                 sm.total(), d.total(), seq.total() / sm.total());
    }
  }
  bench::rule();
  return 0;
}
