// Quality-vs-speed of approximate DBSCAN variants — the quantitative side of
// the paper's Section III argument ("sampling based parallel algorithms ...
// claim to get good performance ... by compromising the clustering
// quality"; QIDBSCAN-style expansions "do not produce exact clustering").
// Not a numbered paper table; DESIGN.md §4 lists it under the engineering
// ablations.
//
// For each dataset: exact µDBSCAN as reference, then QIDBSCAN and sampled
// DBSCAN at several rho, reporting runtime, ARI against exact, and the
// core-set precision/recall.

#include "baselines/qi_dbscan.hpp"
#include "baselines/sampled_dbscan.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "metrics/ari.hpp"
#include "metrics/exactness.hpp"

using namespace udb;

namespace {

struct Quality {
  double ari = 0.0;
  double core_precision = 1.0;
  double core_recall = 1.0;
  bool exact = false;
};

Quality score(const ClusteringResult& truth, const ClusteringResult& got) {
  Quality q;
  q.ari = adjusted_rand_index(truth.label, got.label);
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth.is_core[i] != 0;
    const bool g = got.is_core[i] != 0;
    tp += t && g;
    fp += !t && g;
    fn += t && !g;
  }
  q.core_precision = tp + fp == 0 ? 1.0
                                  : static_cast<double>(tp) /
                                        static_cast<double>(tp + fp);
  q.core_recall =
      tp + fn == 0 ? 1.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fn);
  q.exact = compare_exact(truth, got).exact();
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  cli.check_unused();

  bench::header(
      "Approximate-variant quality vs speed (exact µDBSCAN as reference)",
      "µDBSCAN paper, Section III quality claims (no numbered table)",
      "ARI treats noise as its own cluster; precision/recall are over the "
      "core-point set");

  const std::vector<std::string> names{"MPAGD", "FOF", "3DSRN"};
  bench::row("%-10s %-16s | %8s %7s %7s %7s %6s", "dataset", "variant",
             "time(s)", "ARI", "coreP", "coreR", "exact");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    const Dataset& ds = nd.data;

    WallTimer t;
    const auto truth = mu_dbscan(ds, nd.params);
    const double t_exact = t.seconds();
    bench::row("%-10s %-16s | %8.3f %7.3f %7.3f %7.3f %6s", nd.name.c_str(),
               "uDBSCAN (exact)", t_exact, 1.0, 1.0, 1.0, "yes");

    t.reset();
    const auto qi = qi_dbscan(ds, nd.params);
    const double t_qi = t.seconds();
    const Quality qq = score(truth, qi);
    bench::row("%-10s %-16s | %8.3f %7.3f %7.3f %7.3f %6s", nd.name.c_str(),
               "QIDBSCAN", t_qi, qq.ari, qq.core_precision, qq.core_recall,
               qq.exact ? "yes" : "no");

    for (double rho : {0.5, 0.25, 0.1}) {
      t.reset();
      const auto samp = sampled_dbscan(ds, nd.params, rho, 1);
      const double t_s = t.seconds();
      const Quality qs = score(truth, samp);
      char label[32];
      std::snprintf(label, sizeof label, "sampled rho=%.2f", rho);
      bench::row("%-10s %-16s | %8.3f %7.3f %7.3f %7.3f %6s", nd.name.c_str(),
                 label, t_s, qs.ari, qs.core_precision, qs.core_recall,
                 qs.exact ? "yes" : "no");
    }
    bench::rule();
  }
  bench::row("paper: approximate variants trade exactness for speed; only "
             "uDBSCAN keeps both");
  return 0;
}
