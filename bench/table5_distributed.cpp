// Table V: distributed run-time comparison on the large dataset analogs —
// PDSDBSCAN-D, our GridDBSCAN-D stand-in (the HPDBSCAN-like distributed grid
// serves both grid columns; see DESIGN.md §2), and µDBSCAN-D, on simulated
// ranks. RP-DBSCAN (Spark) is not rebuilt and reported as n/a.
//
// Reported time is the virtual-time makespan (per-rank measured CPU + an
// alpha/beta message cost model) — see src/mpi/minimpi.hpp. Expected shape:
// µDBSCAN-D beats PDSDBSCAN-D everywhere; the grid baseline is fast on low-d
// dense data (as HPDBSCAN was) but degrades at higher dimensionality; only
// µDBSCAN-D handles every row.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/hpdbscan_d.hpp"
#include "dist/mudbscan_d.hpp"
#include "dist/pdsdbscan_d.hpp"
#include "metrics/exactness.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  cli.check_unused();

  bench::header(
      "Table V — distributed run time (virtual-time makespan, seconds)",
      "µDBSCAN paper, Table V (32 nodes; here simulated ranks)",
      "RP-DBSCAN is Spark-based and not rebuilt (n/a); HPDBSCAN-like grid "
      "baseline also stands in for GridDBSCAN-D");

  const std::vector<std::string> names{"MPAGD8M",   "MPAGD100M", "FOF56M",
                                       "FOF28M14D", "KDDB14",    "KDDB74",
                                       "MPAGD1B",   "FOF500M"};

  bench::row("ranks = %d", ranks);
  bench::row("%-12s %7s %3s | %12s %12s %12s %9s | %6s", "dataset", "n", "d",
             "PDSDBSCAN-D", "HPDBSCAN~", "uDBSCAN-D", "RPDBSCAN", "exact");
  bench::rule();

  for (const auto& name : names) {
    NamedDataset nd = make_named_dataset(name, scale);
    const Dataset& ds = nd.data;

    PdsDbscanDStats pds_st;
    const auto pds_res = pdsdbscan_d(ds, nd.params, ranks, &pds_st);

    // The grid baseline blows up when cells cannot prune in high dimensions;
    // the paper marks those rows '-': we run it anyway unless d is large.
    double t_hpd = -1.0;
    ClusteringResult hpd_res;
    bool hpd_ran = ds.dim() <= 14;
    if (hpd_ran) {
      HpdbscanDStats hpd_st;
      hpd_res = hpdbscan_d(ds, nd.params, ranks, &hpd_st);
      t_hpd = hpd_st.total();
    }

    MuDbscanDStats mu_st;
    const auto mu_res = mudbscan_d(ds, nd.params, ranks, &mu_st);

    bool exact = compare_exact(pds_res, mu_res).exact();
    if (hpd_ran) exact = exact && compare_exact(pds_res, hpd_res).exact();

    char hbuf[32];
    if (hpd_ran)
      std::snprintf(hbuf, sizeof hbuf, "%12.2f", t_hpd);
    else
      std::snprintf(hbuf, sizeof hbuf, "%12s", "-");

    bench::row("%-12s %7zu %3zu | %12.2f %s %12.2f %9s | %6s",
               nd.name.c_str(), ds.size(), ds.dim(), pds_st.total(), hbuf,
               mu_st.total(), "n/a", exact ? "yes" : "NO!");
  }

  bench::rule();
  bench::row("paper Table V: uDBSCAN-D lowest except HPDBSCAN (which is "
             "approximate there); only uDBSCAN-D completes the 1B/500M rows");
  return 0;
}
