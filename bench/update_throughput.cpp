// Incremental-update bench (docs/INCREMENTAL.md): sustained insert/erase
// throughput of the IncrementalMuDbscan engine against the naive alternative
// — refitting mu_dbscan from scratch after every update, which is what a
// serving deployment without the incremental engine would have to do.
//
// Three workloads over a blob dataset: insert-only growth, delete-only decay,
// and the serving-shaped mixed stream (60% insert / 40% erase). Each is
// timed end to end through the engine; the refit baseline is measured by
// actually running mu_dbscan over the final survivor set (averaged over a few
// runs), so `speedup_vs_refit = refit_seconds * updates / engine_seconds` is
// an apples-to-apples "updates the engine sustains while one refit runs".
//
// Before any number is reported, every workload proves exactness: the
// engine's result() must equal the canonicalized batch clustering of the
// survivors (the same oracle the differential test suite uses). A full run
// (not --quick) additionally asserts the headline acceptance bound: the
// mixed workload must sustain >= 10x updates/s over refit-per-update at
// n >= 10k. Emits BENCH_update.json (gated in CI by tools/benchdiff).

#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "common/vfs.hpp"
#include "core/incremental.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"
#include "obs/metrics.hpp"

using namespace udb;

namespace {

struct WorkloadResult {
  std::string name;
  std::size_t updates = 0;
  std::size_t final_points = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double refit_seconds_per_update = 0.0;
  double speedup_vs_refit = 0.0;
  bool exact = false;
};

// Applies `ops` (insert row index >= 0, erase id encoded as -(id+1)) through
// a fresh engine seeded with `base`, then measures the refit baseline over
// the final survivors and verifies exactness.
WorkloadResult run_workload(const char* name, const Dataset& base,
                            const Dataset& pool, const DbscanParams& params,
                            const std::vector<std::int64_t>& ops,
                            std::size_t refit_reps,
                            obs::MetricsRegistry* metrics) {
  IncrementalMuDbscan::Config cfg;
  cfg.metrics = metrics;
  IncrementalMuDbscan eng(base.dim(), params, cfg);
  for (std::size_t i = 0; i < base.size(); ++i)
    eng.insert(base.point(static_cast<PointId>(i)));

  WallTimer t;
  for (const std::int64_t op : ops) {
    if (op >= 0)
      eng.insert(pool.point(static_cast<PointId>(op)));
    else
      eng.erase(static_cast<PointId>(-(op + 1)));
  }
  WorkloadResult r;
  r.name = name;
  r.updates = ops.size();
  r.seconds = t.seconds();
  r.updates_per_sec = static_cast<double>(r.updates) / r.seconds;
  r.final_points = eng.size();

  const Dataset survivors = eng.survivors();
  const ClusteringResult inc = eng.result();

  double refit_total = 0.0;
  ClusteringResult batch;
  for (std::size_t rep = 0; rep < refit_reps; ++rep) {
    WallTimer rt;
    batch = mu_dbscan(survivors, params);
    refit_total += rt.seconds();
  }
  r.refit_seconds_per_update =
      refit_total / static_cast<double>(refit_reps);
  r.speedup_vs_refit =
      r.refit_seconds_per_update / (r.seconds / static_cast<double>(r.updates));

  const ClusteringResult ref =
      canonicalize_clustering(survivors, params, std::move(batch));
  r.exact = inc.label == ref.label && inc.is_core == ref.is_core;
  if (!r.exact)
    throw std::runtime_error(
        std::string("EXACTNESS VIOLATION: workload ") + name +
        " diverged from the canonicalized batch clustering");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const bool quick = cli.get_bool("quick", false);
    const auto n = static_cast<std::size_t>(
        cli.get_int_at_least("n", quick ? 3000 : 12000, 100));
    const auto updates = static_cast<std::size_t>(
        cli.get_int_in_range("updates", quick ? 200 : 2000, 10, 1000000));
    const double eps = cli.get_positive_double("eps", 1.5);
    const auto min_pts = static_cast<std::uint32_t>(
        cli.get_int_in_range("minpts", 5, 1, 1000));
    const std::string out_path = cli.get_string("out", "BENCH_update.json");
    cli.check_unused();

    bench::header("update_throughput — incremental updates vs refit",
                  "extension: exact insert/delete maintenance "
                  "(docs/INCREMENTAL.md)",
                  "speedup is refit-per-update cost over amortized "
                  "incremental cost");

    const std::size_t dim = 2;
    const DbscanParams params{eps, min_pts};
    const Dataset base = gen_blobs(n, dim, 16, 60.0, 1.0, 0.08, 42);
    // Insert pool drawn from the same distribution: updates land inside
    // clusters (the expensive case — promotions and merges), not in the void.
    const Dataset pool = gen_blobs(updates, dim, 16, 60.0, 1.0, 0.08, 43);
    const std::size_t refit_reps = quick ? 1 : 3;

    std::mt19937_64 rng(7);
    // insert-only: every pool row in order.
    std::vector<std::int64_t> ins_ops(updates);
    for (std::size_t i = 0; i < updates; ++i)
      ins_ops[i] = static_cast<std::int64_t>(i);
    // delete-only: distinct random base ids.
    std::vector<std::int64_t> del_ops;
    {
      std::vector<std::int64_t> ids(n);
      for (std::size_t i = 0; i < n; ++i)
        ids[i] = -(static_cast<std::int64_t>(i) + 1);
      std::shuffle(ids.begin(), ids.end(), rng);
      del_ops.assign(ids.begin(),
                     ids.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(updates, n / 2)));
    }
    // mixed: 60% inserts / 40% erases of still-alive ids, serving-shaped.
    std::vector<std::int64_t> mix_ops;
    {
      std::vector<PointId> alive(n);
      for (std::size_t i = 0; i < n; ++i) alive[i] = static_cast<PointId>(i);
      PointId next_id = static_cast<PointId>(n);
      std::size_t pool_cursor = 0;
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      for (std::size_t k = 0; k < updates; ++k) {
        if (coin(rng) < 0.6 || alive.size() < 2) {
          mix_ops.push_back(
              static_cast<std::int64_t>(pool_cursor++ % pool.size()));
          alive.push_back(next_id++);
        } else {
          std::uniform_int_distribution<std::size_t> pick(0, alive.size() - 1);
          const std::size_t j = pick(rng);
          mix_ops.push_back(-(static_cast<std::int64_t>(alive[j]) + 1));
          alive[j] = alive.back();
          alive.pop_back();
        }
      }
    }

    obs::MetricsRegistry metrics;
    std::vector<WorkloadResult> results;
    bench::row("%12s | %8s %9s | %12s %16s %10s", "workload", "updates",
               "final_n", "updates/s", "refit_s/update", "speedup");
    bench::rule();
    const struct {
      const char* name;
      const std::vector<std::int64_t>* ops;
    } kWorkloads[] = {
        {"insert_only", &ins_ops},
        {"delete_only", &del_ops},
        {"mixed_60_40", &mix_ops},
    };
    for (const auto& wl : kWorkloads) {
      WorkloadResult r = run_workload(wl.name, base, pool, params, *wl.ops,
                                      refit_reps, &metrics);
      bench::row("%12s | %8zu %9zu | %12.0f %16.6f %9.1fx", r.name.c_str(),
                 r.updates, r.final_points, r.updates_per_sec,
                 r.refit_seconds_per_update, r.speedup_vs_refit);
      results.push_back(std::move(r));
    }
    bench::rule();

    // Headline acceptance bound: at n >= 10k a full run must sustain >= 10x
    // updates/s over refit-per-update on the mixed workload. --quick runs
    // are too small for the bound to be meaningful (refit is cheap at 3k
    // points), so they only check exactness.
    if (!quick && n >= 10000) {
      for (const WorkloadResult& r : results) {
        if (r.name != "mixed_60_40") continue;
        if (r.speedup_vs_refit < 10.0)
          throw std::runtime_error(
              "SPEEDUP BOUND VIOLATION: mixed workload sustained only " +
              std::to_string(r.speedup_vs_refit) +
              "x over refit-per-update (bound: 10x at n >= 10k)");
        bench::row("acceptance: mixed %0.1fx >= 10x over refit-per-update "
                   "at n = %zu — holds",
                   r.speedup_vs_refit, n);
      }
    }

    const obs::MetricsSnapshot ms = metrics.snapshot();
    bench::row("blast radius: %llu MCs touched over %llu tracked updates, "
               "%llu graph edges repaired, %llu full fallbacks",
               static_cast<unsigned long long>(
                   ms.counter(obs::Counter::kIncMcsTouched)),
               static_cast<unsigned long long>(
                   ms.hist(obs::Hist::kIncBlastRadius).count),
               static_cast<unsigned long long>(
                   ms.counter(obs::Counter::kIncGraphEdgesRepaired)),
               static_cast<unsigned long long>(
                   ms.counter(obs::Counter::kIncFullFallbacks)));

    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"update_throughput\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"n\": " << n << ",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"eps\": " << eps << ",\n"
        << "  \"min_pts\": " << min_pts << ",\n"
        << "  \"updates\": " << updates << ",\n"
        << "  \"refit_reps\": " << refit_reps << ",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      out << "    {\"name\": \"" << r.name << "\", \"updates\": " << r.updates
          << ", \"final_points\": " << r.final_points
          << ", \"seconds\": " << r.seconds
          << ", \"updates_per_sec\": " << r.updates_per_sec
          << ", \"refit_seconds_per_update\": " << r.refit_seconds_per_update
          << ", \"speedup_vs_refit\": " << r.speedup_vs_refit
          << ", \"exact\": " << (r.exact ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"metrics\": " << bench::metrics_json_object(ms, 0) << "\n"
        << "}\n";
    const Status st = vfs::write_text_file(out_path, out.str());
    if (!st.ok()) throw std::runtime_error(st.to_string());
    bench::row("json written to %s", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "update_throughput: error: %s\n", e.what());
    return 1;
  }
}
