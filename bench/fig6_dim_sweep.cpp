// Fig. 6: µDBSCAN-D run time as the dimensionality of the KDD-bio analog
// grows (paper: 14 -> 24 -> 44 -> 74 dims of KDDBIO143K74D samples). We
// generate the 74-dim dataset once and project onto dimension prefixes —
// like the paper, parameters are chosen so the number of clusters stays
// roughly the same per sample.
//
// Expected shape: runtime grows steeply with dimensionality (distance cost +
// MBR degradation), here 8.15 s -> 460.83 s in the paper.

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/clustering.hpp"

using namespace udb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  cli.check_unused();

  bench::header("Fig. 6 — µDBSCAN-D run time vs dimensionality",
                "µDBSCAN paper, Fig. 6 (KDDBIO143K74D samples)",
                "same point set projected onto dimension prefixes");

  bench::row("ranks = %d", ranks);
  bench::row("%5s | %12s %10s %9s", "dims", "time(s)", "clusters", "save%");
  bench::rule();

  NamedDataset base = make_named_dataset("KDDB74", scale);
  const std::vector<std::size_t> dims{14, 24, 44, 74};
  for (std::size_t d : dims) {
    Dataset ds = base.data.project(d);
    // eps per dimension from the registry (keeps the cluster count stable,
    // as the paper did for its samples).
    const std::string nm = "KDDB" + std::to_string(d);
    DbscanParams prm = make_named_dataset(nm, scale).params;
    MuDbscanDStats st;
    const auto res = mudbscan_d(ds, prm, ranks, &st);
    const double save =
        100.0 * (1.0 - static_cast<double>(st.queries_performed) /
                           static_cast<double>(ds.size()));
    bench::row("%5zu | %12.2f %10zu %8.1f%%", d, st.total(),
               res.num_clusters(), save);
  }

  bench::rule();
  bench::row("paper Fig. 6: 8.15 s at 14d -> 460.83 s at 74d (steep growth "
             "with dimensionality)");
  return 0;
}
