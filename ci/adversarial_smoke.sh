#!/usr/bin/env bash
# Adversarial-input smoke for the CLI binaries, meant to run under
# ASan/UBSan (see .github/workflows/ci.yml). Each case feeds the tools input
# a hostile or unlucky caller would: malformed files, truncated binaries,
# nonsense flags, blown budgets, tripped deadlines, SIGINT mid-run. The
# contract under test is the run-guard runtime's (docs/ROBUSTNESS.md):
# every failure is a clean, prompt, leak-free exit with an actionable
# message — never a crash, never a hang.
#
# Usage: ci/adversarial_smoke.sh <build-dir>
set -u

BUILD=${1:?usage: adversarial_smoke.sh <build-dir>}
CLI="$BUILD/tools/udbscan"
MKDATA="$BUILD/tools/make_dataset"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

# expect_fail <name> <expected-exit> <cmd...>: the command must exit with
# exactly the expected code (never 0, never a signal death) within 60 s.
expect_fail() {
  local name=$1 want=$2
  shift 2
  timeout 60 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: expected exit $want, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name] (exit $got)"
  fi
}

expect_ok() {
  local name=$1
  shift
  timeout 120 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL [$name]: expected exit 0, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name]"
  fi
}

# ---- hostile files --------------------------------------------------------
printf 'not,numbers\nat,all\n' > "$TMP/garbage.csv"
expect_fail csv-garbage 1 "$CLI" --input "$TMP/garbage.csv" --eps 1 --minpts 3

printf '1,2\nnan,4\n' > "$TMP/nan.csv"
expect_fail csv-nan-strict 1 "$CLI" --input "$TMP/nan.csv" --eps 1 --minpts 3

printf 'XXXX' > "$TMP/badmagic.bin"
expect_fail bin-bad-magic 1 "$CLI" --input "$TMP/badmagic.bin" --eps 1 --minpts 3

# Header promising far more points than the file holds must not allocate.
printf 'UDB1' > "$TMP/liar.bin"
printf '\x08\x00\x00\x00\x00\x00\x00\x00' >> "$TMP/liar.bin"   # dim = 8
printf '\xff\xff\xff\xff\xff\xff\xff\x7f' >> "$TMP/liar.bin"   # count = 2^63-1
expect_fail bin-liar-header 1 "$CLI" --input "$TMP/liar.bin" --eps 1 --minpts 3

: > "$TMP/empty.csv"
expect_fail csv-empty 1 "$CLI" --input "$TMP/empty.csv" --eps 1 --minpts 3

# Quarantine accepts the file with a few bad rows...
{ for i in $(seq 1 200); do echo "$i,$i"; done; echo "nan,1"; } > "$TMP/mixed.csv"
expect_ok csv-quarantine "$CLI" --input "$TMP/mixed.csv" --eps 5 --minpts 3 --quarantine
# ...but strict mode still refuses it.
expect_fail csv-mixed-strict 1 "$CLI" --input "$TMP/mixed.csv" --eps 5 --minpts 3

# ---- nonsense parameters --------------------------------------------------
expect_fail eps-inf 1 "$CLI" --input "$TMP/mixed.csv" --eps inf
expect_fail eps-overflow 1 "$CLI" --input "$TMP/mixed.csv" --eps 1e999
expect_fail minpts-overflow 1 "$CLI" --input "$TMP/mixed.csv" --minpts 99999999999999999999
expect_fail unknown-flag 1 "$CLI" --input "$TMP/mixed.csv" --eps 1 --frobnicate 3
expect_fail bad-on-budget 1 "$CLI" --input "$TMP/mixed.csv" --deadline-ms 100 --on-budget maybe
expect_fail mkdata-negative-n 1 "$MKDATA" --gen blobs --n -1 --out "$TMP/x.csv"
expect_fail mkdata-overflow-n 1 "$MKDATA" --gen blobs --n 9999999999999999999 --out "$TMP/x.csv"
expect_fail mkdata-zero-dim 1 "$MKDATA" --gen blobs --dim 0 --out "$TMP/x.csv"
expect_fail mkdata-bad-combo 1 "$MKDATA" --name MPAGD --gen blobs --out "$TMP/x.csv"

# ---- guarded runs: budget, deadline, cancellation -------------------------
"$MKDATA" --gen blobs --n 50000 --dim 3 --out "$TMP/big.bin" >/dev/null

# Budget smaller than the dataset: clean exit 3 under fail...
expect_fail budget-fail 3 "$CLI" --input "$TMP/big.bin" --eps 3 --minpts 5 \
  --mem-budget-mb 1 --on-budget fail
# ...approximate success under degrade (both thread counts share the path).
expect_ok budget-degrade-t1 "$CLI" --input "$TMP/big.bin" --eps 3 --minpts 5 \
  --mem-budget-mb 1 --on-budget degrade
expect_ok budget-degrade-t4 "$CLI" --input "$TMP/big.bin" --eps 3 --minpts 5 \
  --mem-budget-mb 1 --on-budget degrade --threads 4

# A 1 ms deadline on a 50k-point run: exit 3, promptly.
expect_fail deadline-fail 3 "$CLI" --input "$TMP/big.bin" --eps 3 --minpts 5 \
  --deadline-ms 1
expect_fail deadline-fail-dist 3 "$CLI" --input "$TMP/big.bin" --eps 3 \
  --minpts 5 --deadline-ms 1 --algo mudbscan-d --ranks 3

# SIGINT mid-run: graceful CANCELLED exit (4), not a signal death (130).
"$CLI" --input "$TMP/big.bin" --eps 3 --minpts 5 --threads 4 \
  --deadline-ms 600000 >"$TMP/out" 2>&1 &
CLI_PID=$!
sleep 0.2
kill -INT "$CLI_PID" 2>/dev/null
wait "$CLI_PID"
got=$?
if [ "$got" -eq 4 ] || [ "$got" -eq 0 ]; then
  # exit 0 is legal if the run beat the signal; exit 4 is the cancelled path.
  echo "ok   [sigint-cancel] (exit $got)"
else
  echo "FAIL [sigint-cancel]: expected exit 4 (or 0 if too fast), got $got"
  sed 's/^/    /' "$TMP/out"
  FAILURES=$((FAILURES + 1))
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "adversarial smoke: $FAILURES failure(s)"
  exit 1
fi
echo "adversarial smoke: all cases passed"
