#!/usr/bin/env bash
# Serving-pipeline smoke, meant to run under ASan/LSan (see
# .github/workflows/ci.yml). Drives the whole model-serving story through
# the real binaries: fit -> snapshot -> serve over loopback TCP -> mixed
# queries from the CLI client (deliberate protocol garbage included) ->
# byte-level diff of served vs offline answers -> stats document validation,
# including the serving classify ledger (docs/SERVING.md):
#
#   serve_classify_performed + serve_classify_avoided_exact
#       == serve_classify_points
#
# The contract: exact answers, clean errors, no crash, no leak, no hang.
#
# Usage: ci/serving_smoke.sh <build-dir>
set -u

BUILD=${1:?usage: serving_smoke.sh <build-dir>}
CLI="$BUILD/tools/udbscan"
SERVE="$BUILD/tools/udbscan_serve"
QUERY="$BUILD/tools/udbscan_query"
MKDATA="$BUILD/tools/make_dataset"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

expect_ok() {
  local name=$1
  shift
  timeout 120 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL [$name]: expected exit 0, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name]"
  fi
}

expect_fail() {
  local name=$1 want=$2
  shift 2
  timeout 60 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: expected exit $want, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name] (exit $got)"
  fi
}

# ---- fit and snapshot -----------------------------------------------------
expect_ok make-data "$MKDATA" --gen blobs --n 4000 --dim 2 --seed 7 \
  --out "$TMP/pts.csv"
expect_ok fit-snapshot "$CLI" --input "$TMP/pts.csv" --eps 3 --minpts 5 \
  --snapshot-out "$TMP/model.udbm"

# Mixed query set: dataset points (must ride the exact-match fast path) plus
# hand-written novel points (border-candidate rule).
head -n 500 "$TMP/pts.csv" > "$TMP/queries.csv"
printf '%s\n' "0.05,0.05" "123456.0,-98765.0" "50.0,50.0" \
  >> "$TMP/queries.csv"

# Offline answers straight from the snapshot — the reference for the diff.
expect_ok offline-classify "$CLI" --snapshot-in "$TMP/model.udbm" \
  --classify "$TMP/queries.csv" --out "$TMP/offline.csv"

# ---- serve ---------------------------------------------------------------
"$SERVE" --snapshot "$TMP/model.udbm" --max-seconds 300 \
  --stats-out "$TMP/stats.json" > "$TMP/serve.out" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(grep -oE '127\.0\.0\.1:[0-9]+' "$TMP/serve.out" 2>/dev/null |
    head -n1 | cut -d: -f2)
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL [serve-start]: server died before binding"
    sed 's/^/    /' "$TMP/serve.out"
    exit 1
  fi
  sleep 0.2
done
if [ -z "$PORT" ]; then
  echo "FAIL [serve-start]: no port line within 20s"
  sed 's/^/    /' "$TMP/serve.out"
  exit 1
fi
echo "ok   [serve-start] (port $PORT)"

expect_ok ping "$QUERY" --port "$PORT" --ping
expect_ok model-info "$QUERY" --port "$PORT" --model-info
expect_ok point-info "$QUERY" --port "$PORT" --point-info 0
expect_ok neighbors "$QUERY" --port "$PORT" --neighbors 0.5,0.5 --radius 3

# Served answers must be byte-identical to the offline ones.
expect_ok served-classify "$QUERY" --port "$PORT" \
  --classify "$TMP/queries.csv" --out "$TMP/served.csv"
if diff -q "$TMP/offline.csv" "$TMP/served.csv" >/dev/null 2>&1; then
  echo "ok   [served-vs-offline-diff]"
else
  echo "FAIL [served-vs-offline-diff]: served answers differ from offline"
  diff "$TMP/offline.csv" "$TMP/served.csv" | head -20 | sed 's/^/    /'
  FAILURES=$((FAILURES + 1))
fi

# The whole training set must classify as exact matches.
timeout 120 "$QUERY" --port "$PORT" --classify "$TMP/pts.csv" \
  >"$TMP/self.out" 2>&1
if grep -q "(4000 exact matches)" "$TMP/self.out"; then
  echo "ok   [self-classify-exact]"
else
  echo "FAIL [self-classify-exact]: not every dataset point matched exactly"
  tail -3 "$TMP/self.out" | sed 's/^/    /'
  FAILURES=$((FAILURES + 1))
fi

# Protocol abuse: malformed frames get clean errors and the server survives.
expect_ok garbage "$QUERY" --port "$PORT" --garbage 12

# A clean request must still work after the abuse.
expect_ok ping-after-garbage "$QUERY" --port "$PORT" --ping

# Live stats must be valid JSON with a balanced classify ledger.
expect_ok stats-fetch "$QUERY" --port "$PORT" --stats \
  --out "$TMP/live_stats.json"
if python3 - "$TMP/live_stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 2, doc
ledger = doc["serve_ledger"]
assert ledger["performed"] + ledger["avoided_exact"] \
    == ledger["classify_points"], ledger
assert ledger["classify_points"] > 0, ledger
assert doc["model"]["n"] == 4000, doc["model"]
assert doc["telemetry"]["totals"]["requests"] > 0, doc["telemetry"]
EOF
then
  echo "ok   [stats-ledger]"
else
  echo "FAIL [stats-ledger]: invalid stats document or unbalanced ledger"
  FAILURES=$((FAILURES + 1))
fi

# ---- live telemetry -------------------------------------------------------
# The TELEMETRY admin RPC end to end: the JSON report must parse, carry the
# fixed 1s/10s/60s windows with the traffic we just sent inside them, and
# keep the serving classify ledger balanced; the Prometheus rendering must
# expose the counter families and labeled window gauges
# (docs/OBSERVABILITY.md, "Live telemetry").
expect_ok telemetry-fetch "$QUERY" --port "$PORT" --telemetry \
  --out "$TMP/telemetry.json"
if python3 - "$TMP/telemetry.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 2, doc
assert doc["kind"] == "telemetry", doc
assert doc["totals"]["requests"] > 0, doc["totals"]
assert doc["serve_ledger"]["holds"] is True, doc["serve_ledger"]
spans = [w["window_seconds"] for w in doc["windows"]]
assert spans == [1.0, 10.0, 60.0], spans
w60 = doc["windows"][2]
assert w60["requests"] > 0 and w60["qps"] > 0, w60
assert w60["p50_us"] <= w60["p99_us"] <= w60["max_us"] + 1e-9, w60
EOF
then
  echo "ok   [telemetry-json]"
else
  echo "FAIL [telemetry-json]: bad telemetry document"
  FAILURES=$((FAILURES + 1))
fi
expect_ok telemetry-prometheus "$QUERY" --port "$PORT" --telemetry \
  --prometheus --out "$TMP/telemetry.prom"
if grep -q '^udbscan_serve_requests_total ' "$TMP/telemetry.prom" &&
   grep -q 'udbscan_window_qps{window="10s"}' "$TMP/telemetry.prom" &&
   grep -q 'udbscan_serve_request_us_bucket{le="+Inf"}' "$TMP/telemetry.prom"
then
  echo "ok   [telemetry-prometheus-families]"
else
  echo "FAIL [telemetry-prometheus-families]: missing expected families"
  sed 's/^/    /' "$TMP/telemetry.prom" | head -10
  FAILURES=$((FAILURES + 1))
fi
# One refresh of the live terminal dashboard against the running server.
expect_ok top-once "$BUILD/tools/udbscan_top" --ports "$PORT" \
  --iterations 1 --no-clear

# ---- graceful shutdown ----------------------------------------------------
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  echo "ok   [graceful-shutdown]"
else
  echo "FAIL [graceful-shutdown]: server exited non-zero on SIGTERM"
  sed 's/^/    /' "$TMP/serve.out"
  FAILURES=$((FAILURES + 1))
fi
SERVER_PID=""
expect_ok shutdown-stats python3 -m json.tool "$TMP/stats.json"

# ---- corrupted snapshots must be refused, not served ----------------------
head -c 100 "$TMP/model.udbm" > "$TMP/truncated.udbm"
expect_fail serve-truncated-snapshot 1 "$SERVE" \
  --snapshot "$TMP/truncated.udbm"
printf 'XXXX' | cat - "$TMP/model.udbm" | head -c "$(stat -c%s \
  "$TMP/model.udbm")" > "$TMP/badmagic.udbm"
expect_fail serve-badmagic-snapshot 1 "$SERVE" \
  --snapshot "$TMP/badmagic.udbm"
expect_fail serve-missing-snapshot 1 "$SERVE" \
  --snapshot "$TMP/nonexistent.udbm"
expect_fail offline-truncated-snapshot 1 "$CLI" \
  --snapshot-in "$TMP/truncated.udbm" --classify "$TMP/queries.csv"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES serving smoke failure(s)"
  exit 1
fi
echo "serving smoke: all checks passed"
