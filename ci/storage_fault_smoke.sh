#!/usr/bin/env bash
# Storage-tier fault smoke, meant to run under ASan/LSan (see
# .github/workflows/ci.yml). Drives the durable storage stack
# (docs/ROBUSTNESS.md §Durability) end to end:
#
#   * crashharness — the kill-and-recover matrix over the seeded VFS fault
#     layer: forked children _Exit()ed at sampled I/O operations (power
#     loss between syscalls), injected ENOSPC / fsync failures / EINTR /
#     short reads and writes / read-side bit rot, plus a real on-disk
#     corruption of the newest snapshot generation. After every scenario,
#     recovery (snapshot generation + WAL replay) must be a byte-exact
#     prefix of the ingestion sequence, clustered byte-identically to
#     fit-from-scratch, and no failed or killed save may damage a
#     previously published generation.
#   * writer exit-code contract — artifact writers that cannot persist
#     (missing directory) must fail the process with a non-zero exit and a
#     message, never exit 0 with silently missing output.
#
# Usage: ci/storage_fault_smoke.sh <build-dir>
set -u

BUILD=${1:?usage: storage_fault_smoke.sh <build-dir>}
CLI="$BUILD/tools/udbscan"
MKDATA="$BUILD/tools/make_dataset"
HARNESS="$BUILD/tools/crashharness"
TMP=$(mktemp -d)
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT
FAILURES=0

expect_ok() {
  local name=$1
  shift
  timeout 500 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL [$name]: expected exit 0, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name]"
  fi
}

expect_fail() {
  local name=$1
  shift
  timeout 60 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -eq 0 ]; then
    echo "FAIL [$name]: expected a non-zero exit, got 0"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name] (exit $got)"
  fi
}

# ---- crash / fault matrix ---------------------------------------------------
# Two seeds so the sampled crash ordinals and fault patterns differ; the
# harness exits non-zero on any recovery mismatch or damaged generation.
expect_ok crash-matrix-seed7  "$HARNESS" --quick --seed 7  --dir "$TMP/ch7"
expect_ok crash-matrix-seed23 "$HARNESS" --quick --seed 23 --dir "$TMP/ch23"

# ---- writer exit-code contract ----------------------------------------------
# Every artifact writer goes through the VFS and must propagate failure as a
# non-zero exit: an unwritable --out/--trace-out/--metrics-out/--snapshot-out
# is an error the pipeline has to see, not a silent no-op.
expect_ok make-data "$MKDATA" --gen blobs --n 500 --dim 2 --seed 3 \
  --out "$TMP/pts.csv"
expect_fail cli-unwritable-trace "$CLI" --input "$TMP/pts.csv" \
  --eps 3 --minpts 5 --trace-out "$TMP/no_such_dir/trace.json"
expect_fail cli-unwritable-metrics "$CLI" --input "$TMP/pts.csv" \
  --eps 3 --minpts 5 --metrics-out "$TMP/no_such_dir/report.json"
expect_fail cli-unwritable-snapshot "$CLI" --input "$TMP/pts.csv" \
  --eps 3 --minpts 5 --snapshot-out "$TMP/no_such_dir/model.udbm"
expect_fail mkdata-unwritable-out "$MKDATA" --gen blobs --n 100 --dim 2 \
  --out "$TMP/no_such_dir/pts.csv"

# The happy path still works after all that: fit, snapshot, classify from
# the snapshot offline.
expect_ok fit-snapshot "$CLI" --input "$TMP/pts.csv" --eps 3 --minpts 5 \
  --snapshot-out "$TMP/model.udbm"
expect_ok snapshot-classify "$CLI" --snapshot-in "$TMP/model.udbm" \
  --classify "$TMP/pts.csv" --out "$TMP/classified.csv"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES storage fault smoke failure(s)"
  exit 1
fi
echo "storage fault smoke: all checks passed"
