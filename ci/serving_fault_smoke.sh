#!/usr/bin/env bash
# Serving-tier fault smoke, meant to run under ASan/LSan (see
# .github/workflows/ci.yml). Complements ci/serving_smoke.sh (the happy
# path plus protocol garbage) with the failure-mode matrix from
# docs/SERVING.md:
#
#   * servefaultharness — in-process scenario sweep over the seeded
#     NetFaultPlan: corrupt frames (CRC must catch every bit-flip before a
#     wrong answer can surface), dropped connections mid-exchange,
#     truncated writes, replica killed mid-batch (failover must lose
#     nothing), and an in-flight budget of 1 under concurrent clients
#     (sheds retried until every request succeeds exactly).
#   * udbscan_serve --replicas N — every replica binds, serves the same
#     answers, and the process shuts down cleanly on SIGTERM.
#   * udbscan_query exit-code contract — 2 for bad arguments, 3 for an
#     unreachable server, so scripts can tell "retry elsewhere" from
#     "fix your invocation".
#
# The contract everywhere: a request either returns the exact offline
# answer or a clean retryable error — no wrong answers, no hang, no leak.
#
# Usage: ci/serving_fault_smoke.sh <build-dir>
set -u

BUILD=${1:?usage: serving_fault_smoke.sh <build-dir>}
CLI="$BUILD/tools/udbscan"
SERVE="$BUILD/tools/udbscan_serve"
QUERY="$BUILD/tools/udbscan_query"
MKDATA="$BUILD/tools/make_dataset"
HARNESS="$BUILD/tools/servefaultharness"
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

expect_ok() {
  local name=$1
  shift
  timeout 300 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL [$name]: expected exit 0, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name]"
  fi
}

expect_exit() {
  local name=$1 want=$2
  shift 2
  timeout 60 "$@" >"$TMP/out" 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: expected exit $want, got $got"
    sed 's/^/    /' "$TMP/out"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   [$name] (exit $got)"
  fi
}

# ---- in-process fault matrix ----------------------------------------------
# Corrupt / drop / truncate / kill-replica / overload, all seeded. The
# harness exits non-zero on a single wrong answer or lost request.
expect_ok fault-matrix "$HARNESS" --quick --n 400 --queries 24 --seed 7

# ---- replica serving e2e ---------------------------------------------------
expect_ok make-data "$MKDATA" --gen blobs --n 2000 --dim 2 --seed 11 \
  --out "$TMP/pts.csv"
expect_ok fit-snapshot "$CLI" --input "$TMP/pts.csv" --eps 3 --minpts 5 \
  --snapshot-out "$TMP/model.udbm"

"$SERVE" --snapshot "$TMP/model.udbm" --replicas 2 --max-seconds 300 \
  > "$TMP/serve.out" 2>&1 &
SERVER_PID=$!

PORTS=""
for _ in $(seq 1 100); do
  PORTS=$(grep -oE '127\.0\.0\.1:[0-9]+' "$TMP/serve.out" 2>/dev/null |
    cut -d: -f2 | sort -u)
  [ "$(echo "$PORTS" | grep -c .)" -ge 2 ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL [replica-start]: server died before binding both replicas"
    sed 's/^/    /' "$TMP/serve.out"
    exit 1
  fi
  sleep 0.2
done
if [ "$(echo "$PORTS" | grep -c .)" -lt 2 ]; then
  echo "FAIL [replica-start]: expected 2 replica port lines within 20s"
  sed 's/^/    /' "$TMP/serve.out"
  exit 1
fi
PORT_A=$(echo "$PORTS" | sed -n 1p)
PORT_B=$(echo "$PORTS" | sed -n 2p)
echo "ok   [replica-start] (ports $PORT_A $PORT_B)"

expect_ok ping-replica-a "$QUERY" --port "$PORT_A" --ping
expect_ok ping-replica-b "$QUERY" --port "$PORT_B" --ping

# Both replicas serve the same snapshot, so answers must be byte-identical.
head -n 200 "$TMP/pts.csv" > "$TMP/queries.csv"
expect_ok classify-replica-a "$QUERY" --port "$PORT_A" \
  --classify "$TMP/queries.csv" --out "$TMP/a.csv"
expect_ok classify-replica-b "$QUERY" --port "$PORT_B" \
  --classify "$TMP/queries.csv" --out "$TMP/b.csv"
if diff -q "$TMP/a.csv" "$TMP/b.csv" >/dev/null 2>&1; then
  echo "ok   [replica-answers-identical]"
else
  echo "FAIL [replica-answers-identical]: replicas disagree"
  diff "$TMP/a.csv" "$TMP/b.csv" | head -10 | sed 's/^/    /'
  FAILURES=$((FAILURES + 1))
fi

# One SIGTERM stops every replica; the process must exit zero.
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  echo "ok   [replica-graceful-shutdown]"
else
  echo "FAIL [replica-graceful-shutdown]: non-zero exit on SIGTERM"
  sed 's/^/    /' "$TMP/serve.out"
  FAILURES=$((FAILURES + 1))
fi
SERVER_PID=""

# ---- client exit-code contract ---------------------------------------------
# 3 = server unreachable (the port the replicas just vacated), 2 = bad
# arguments, distinguishable by scripts and process supervisors.
expect_exit query-unreachable 3 "$QUERY" --port "$PORT_A" --ping
expect_exit query-bad-port 2 "$QUERY" --port notanumber --ping
expect_exit query-missing-port 2 "$QUERY" --ping

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES serving fault smoke failure(s)"
  exit 1
fi
echo "serving fault smoke: all checks passed"
